//! The versioned wire schema: owned request/response types that can cross
//! a process or socket boundary.
//!
//! The request layer's borrowed types (`SolveRequest<'a>`,
//! [`NetRecord<'a>`](crate::json::NetRecord)) are zero-copy by design and
//! therefore cannot be queued, stored, or sent anywhere. This module is
//! the owned, versioned counterpart — the **single schema** that
//! `fastbuf solve --json`, `fastbuf batch --json`, and `fastbuf serve`
//! all serialize through:
//!
//! * [`Json`] — a minimal JSON value with a strict parser (the workspace
//!   builds offline, without serde; emission was always hand-rolled, this
//!   adds the matching reader).
//! * [`parse_frame`] / [`Op`] — the v1 request envelope
//!   `{"v":1, "id":…, "op":"load|unload|solve|eco|ping|stats|shutdown", …}`.
//! * [`ok_frame`] / [`error_frame`] — the response envelope
//!   `{"v":1, "id":…, "ok":…, …}`.
//! * [`scenario_record`] — builds the owned per-scenario
//!   [`NetRecordOwned`] every producer emits, so per-net JSON is
//!   byte-identical wherever it comes from.
//!
//! The full protocol (framing, op fields, error codes, compatibility
//! rules) is documented in `docs/PROTOCOL.md`.

use std::error::Error;
use std::fmt;

use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Algorithm, VerifyError};
use fastbuf_rctree::{elmore, RoutingTree};

use crate::error::SolveError;
use crate::json::{json_f64, json_str, NetRecordOwned};
use crate::outcome::ScenarioOutcome;

/// The wire schema version this build speaks. Requests must carry
/// `"v": 1`; any other version is rejected with an
/// `unsupported-version` error rather than misinterpreted.
pub const WIRE_VERSION: u64 = 1;

/// Nesting depth cap of the JSON reader — frames are flat envelopes, so
/// anything deeper is hostile or corrupt input, rejected instead of
/// recursed into.
const MAX_DEPTH: usize = 64;

// ---------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------

/// A parsed JSON value.
///
/// Object member order is preserved (members are a `Vec`, not a map);
/// duplicate keys are rejected at parse time.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.
    Obj(Vec<(String, Json)>),
}

/// A JSON syntax error with the byte offset it was detected at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.i != p.bytes.len() {
            return Err(p.err("trailing content after the JSON value"));
        }
        Ok(value)
    }

    /// Member `key` of an object (`None` for missing keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes this value back to compact JSON (used to echo request
    /// ids verbatim into responses).
    pub fn to_json(&self) -> String {
        match self {
            Json::Null => "null".to_owned(),
            Json::Bool(b) => if *b { "true" } else { "false" }.to_owned(),
            Json::Num(n) => json_f64(*n),
            Json::Str(s) => json_str(s),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::to_json).collect();
                format!("[{}]", inner.join(", "))
            }
            Json::Obj(members) => {
                let inner: Vec<String> = members
                    .iter()
                    .map(|(k, v)| format!("{}: {}", json_str(k), v.to_json()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.i,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.i) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.i;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.i += 1;
            }
            p.i > before
        };
        let int_start = self.i;
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.bytes[int_start] == b'0' && self.i > int_start + 1 {
            return Err(self.err("leading zeros are not allowed"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(self.err("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.i]).expect("ASCII number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate must be followed by an
                                // escaped low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.expect(b'u')
                                        .map_err(|_| self.err("expected low surrogate"))?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(ch);
                            // hex4 leaves `i` one past the last hex digit;
                            // skip the shared `self.i += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.i..]).expect("input was a valid &str");
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    /// Reads 4 hex digits starting at `self.i + 1` (the byte after `u`),
    /// leaving `self.i` one past the last digit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            code = code * 16 + digit;
            self.i += 1;
        }
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Request envelope
// ---------------------------------------------------------------------

/// Errors of the envelope layer (everything before a design is touched).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// The frame is not valid JSON.
    Json(JsonError),
    /// The frame's `"v"` is missing or not [`WIRE_VERSION`].
    Version {
        /// The version the frame carried (`None` = missing/non-numeric).
        got: Option<u64>,
    },
    /// The frame's `"op"` is missing or unknown.
    UnknownOp(String),
    /// A field is missing, has the wrong type, or is out of range.
    BadRequest(String),
}

impl WireError {
    /// The stable machine-readable error code of this error (the
    /// `error.code` field of an error response).
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Json(_) => "parse",
            WireError::Version { .. } => "unsupported-version",
            WireError::UnknownOp(_) => "unknown-op",
            WireError::BadRequest(_) => "bad-request",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "{e}"),
            WireError::Version { got: Some(v) } => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks v{WIRE_VERSION})"
                )
            }
            WireError::Version { got: None } => {
                write!(
                    f,
                    "missing numeric \"v\" (this build speaks v{WIRE_VERSION})"
                )
            }
            WireError::UnknownOp(op) => write!(
                f,
                "unknown op `{op}` (expected load, unload, solve, eco, ping, stats, or shutdown)"
            ),
            WireError::BadRequest(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::Json(e) => Some(e),
            _ => None,
        }
    }
}

/// Where a design's net or library text comes from in a `load` op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// Inline file text shipped in the frame.
    Text(String),
    /// A path the server reads (trusted/local deployments only — see
    /// `docs/PROTOCOL.md`).
    Path(String),
}

/// The shared solve/eco parameters of a request.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveParams {
    /// The design id the op targets.
    pub design: String,
    /// Scenario lines in the `parse_scenarios` syntax (`None` = one
    /// default scenario). Element `k` is reported as line `k + 1` in
    /// parse errors.
    pub scenarios: Option<Vec<String>>,
    /// Default algorithm for scenarios without their own `algo=`.
    pub algorithm: Option<Algorithm>,
    /// Default delay-model name for scenarios without their own `model=`
    /// (resolved by the consumer via `model_by_name`).
    pub model: Option<String>,
    /// Include per-scenario placement lists in the response records.
    pub placements: bool,
    /// Re-measure each scenario with the independent forward evaluator
    /// before responding (default `true`).
    pub verify: bool,
    /// Per-request deadline in milliseconds from frame receipt (`None` =
    /// the server's default).
    pub deadline_ms: Option<u64>,
    /// Inline variation-file text (the `parse_variation` syntax). Present
    /// ⇒ the op is a yield-target solve.
    pub variation: Option<String>,
    /// Monte-Carlo sample count for yield-target solves.
    pub samples: Option<u64>,
    /// Reported slack quantile for yield-target solves (default `0.5`).
    pub quantile: Option<f64>,
}

/// One parsed request op.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Op {
    /// Liveness / drain probe.
    Ping,
    /// Registry statistics.
    Stats,
    /// Graceful shutdown: stop accepting, drain in-flight work.
    Shutdown,
    /// Load (or replace) a design under an id.
    Load {
        /// The design id.
        design: String,
        /// The net.
        net: Source,
        /// The buffer library.
        lib: Source,
        /// Default delay-model name for this design's session.
        model: Option<String>,
    },
    /// Drop a design.
    Unload {
        /// The design id.
        design: String,
    },
    /// Solve the design under one or more scenarios.
    Solve(SolveParams),
    /// Apply ECO edits, then re-solve incrementally through the design's
    /// warm per-scenario caches.
    Eco {
        /// The shared parameters.
        params: SolveParams,
        /// Edit lines in the `fastbuf_incremental::parse_edits` syntax.
        edits: Vec<String>,
    },
}

fn req_str(obj: &Json, key: &str) -> Result<String, WireError> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(WireError::BadRequest(format!("\"{key}\" must be a string"))),
        None => Err(WireError::BadRequest(format!("missing \"{key}\""))),
    }
}

fn opt_str(obj: &Json, key: &str) -> Result<Option<String>, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(WireError::BadRequest(format!("\"{key}\" must be a string"))),
    }
}

fn opt_bool(obj: &Json, key: &str, default: bool) -> Result<bool, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(WireError::BadRequest(format!(
            "\"{key}\" must be a boolean"
        ))),
    }
}

fn opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            WireError::BadRequest(format!("\"{key}\" must be a non-negative integer"))
        }),
    }
}

fn opt_str_array(obj: &Json, key: &str) -> Result<Option<Vec<String>>, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_str().map(str::to_owned).ok_or_else(|| {
                    WireError::BadRequest(format!("\"{key}\" must be an array of strings"))
                })
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(WireError::BadRequest(format!(
            "\"{key}\" must be an array of strings"
        ))),
    }
}

fn source(obj: &Json, text_key: &str, path_key: &str) -> Result<Source, WireError> {
    match (opt_str(obj, text_key)?, opt_str(obj, path_key)?) {
        (Some(_), Some(_)) => Err(WireError::BadRequest(format!(
            "give either \"{text_key}\" or \"{path_key}\", not both"
        ))),
        (Some(text), None) => Ok(Source::Text(text)),
        (None, Some(path)) => Ok(Source::Path(path)),
        (None, None) => Err(WireError::BadRequest(format!(
            "missing \"{text_key}\" (inline text) or \"{path_key}\""
        ))),
    }
}

fn solve_params(obj: &Json) -> Result<SolveParams, WireError> {
    let algorithm = match opt_str(obj, "algo")? {
        None => None,
        Some(name) => Some(
            name.parse::<Algorithm>()
                .map_err(|e| WireError::BadRequest(format!("\"algo\": {e}")))?,
        ),
    };
    let quantile = match obj.get("quantile") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| WireError::BadRequest("\"quantile\" must be a number".into()))?,
        ),
    };
    Ok(SolveParams {
        design: req_str(obj, "design")?,
        scenarios: opt_str_array(obj, "scenarios")?,
        algorithm,
        model: opt_str(obj, "model")?,
        placements: opt_bool(obj, "placements", false)?,
        verify: opt_bool(obj, "verify", true)?,
        deadline_ms: opt_u64(obj, "deadline_ms")?,
        variation: opt_str(obj, "variation")?,
        samples: opt_u64(obj, "samples")?,
        quantile,
    })
}

/// Parses one request frame.
///
/// Returns the request id (echoed into the response even for malformed
/// ops, whenever the frame parsed far enough to recover it) alongside the
/// op or envelope error.
pub fn parse_frame(frame: &str) -> (Option<Json>, Result<Op, WireError>) {
    let root = match Json::parse(frame) {
        Ok(v) => v,
        Err(e) => return (None, Err(WireError::Json(e))),
    };
    let id = match root.get("id") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.clone()),
    };
    let op = parse_op(&root);
    (id, op)
}

fn parse_op(root: &Json) -> Result<Op, WireError> {
    if !matches!(root, Json::Obj(_)) {
        return Err(WireError::BadRequest(
            "a request frame must be a JSON object".into(),
        ));
    }
    match root.get("v").and_then(Json::as_u64) {
        Some(WIRE_VERSION) => {}
        got => return Err(WireError::Version { got }),
    }
    let op = req_str(root, "op").map_err(|_| WireError::UnknownOp("<missing>".into()))?;
    match op.as_str() {
        "ping" => Ok(Op::Ping),
        "stats" => Ok(Op::Stats),
        "shutdown" => Ok(Op::Shutdown),
        "load" => Ok(Op::Load {
            design: req_str(root, "design")?,
            net: source(root, "net", "net_path")?,
            lib: source(root, "lib", "lib_path")?,
            model: opt_str(root, "model")?,
        }),
        "unload" => Ok(Op::Unload {
            design: req_str(root, "design")?,
        }),
        "solve" => Ok(Op::Solve(solve_params(root)?)),
        "eco" => {
            let edits = opt_str_array(root, "edits")?
                .ok_or_else(|| WireError::BadRequest("missing \"edits\"".into()))?;
            if edits.is_empty() {
                return Err(WireError::BadRequest("\"edits\" must be non-empty".into()));
            }
            Ok(Op::Eco {
                params: solve_params(root)?,
                edits,
            })
        }
        other => Err(WireError::UnknownOp(other.to_owned())),
    }
}

// ---------------------------------------------------------------------
// Response envelope
// ---------------------------------------------------------------------

fn frame_prefix(id: Option<&Json>) -> String {
    let mut s = format!("{{\"v\": {WIRE_VERSION}, ");
    if let Some(id) = id {
        s.push_str(&format!("\"id\": {}, ", id.to_json()));
    }
    s
}

/// A success response: `result` must already be a serialized JSON value.
pub fn ok_frame(id: Option<&Json>, result: &str) -> String {
    format!("{}\"ok\": true, \"result\": {result}}}", frame_prefix(id))
}

/// A typed error response with a stable machine-readable `code`.
pub fn error_frame(id: Option<&Json>, code: &str, message: &str) -> String {
    format!(
        "{}\"ok\": false, \"error\": {{\"code\": {}, \"message\": {}}}}}",
        frame_prefix(id),
        json_str(code),
        json_str(message)
    )
}

// ---------------------------------------------------------------------
// Owned per-scenario records
// ---------------------------------------------------------------------

/// Builds the owned per-scenario record every JSON producer emits: the
/// corner's view of the tree is re-derated, the unbuffered baseline and
/// the solved net's worst slew are measured under **that corner's own
/// delay model**, and the result is the exact `batch --json` per-net
/// schema (same serializer, same bytes).
///
/// `named` controls whether the record carries a `"scenario"` key
/// (multi-corner runs) — matching `fastbuf solve`'s rule that explicit
/// scenario files always produce named records.
///
/// # Errors
///
/// [`SolveError::Unsupported`] when the scenario did not solve for max
/// slack (frontier/polarity outcomes have no per-net record), and
/// [`SolveError::Verify`] when the corner's tree rejects forward
/// evaluation.
pub fn scenario_record(
    net_name: &str,
    index: usize,
    tree: &RoutingTree,
    library: &BufferLibrary,
    corner: &ScenarioOutcome,
    named: bool,
    include_placements: bool,
) -> Result<NetRecordOwned, SolveError> {
    let scenario = &corner.scenario;
    let solution = corner.solution().ok_or_else(|| SolveError::Unsupported {
        scenario: scenario.name.clone(),
        reason: "wire records cover max-slack solves only".into(),
    })?;
    let named_err = |e| SolveError::Verify {
        scenario: scenario.name.clone(),
        error: VerifyError::Tree(e),
    };
    let corner_tree = scenario.apply_derate(tree);
    let corner_tree = &*corner_tree;
    let before =
        elmore::evaluate_with(corner_tree, library, &[], &*corner.model).map_err(named_err)?;
    let measured = elmore::evaluate_with(
        corner_tree,
        library,
        &solution.placement_pairs(),
        &*corner.model,
    )
    .map_err(named_err)?;
    Ok(NetRecordOwned {
        name: net_name.to_owned(),
        index,
        scenario: named.then(|| scenario.name.clone()),
        sinks: tree.sink_count(),
        sites: tree.buffer_site_count(),
        slack_before: before.slack,
        slack_after: solution.slack,
        slew_before: before.max_slew,
        max_slew: measured.max_slew,
        slew_ok: solution.slew_ok,
        buffers: solution.placements.len(),
        cost: solution.total_cost(library),
        elapsed: corner.elapsed,
        placements: include_placements.then(|| solution.placements.clone()),
    })
}

/// Serializes one skew-target scenario's
/// [`SkewSolution`](fastbuf_core::skew::SkewSolution): the shared
/// [`NetRecord`](crate::json::NetRecord) schema (same serializer, same
/// prefix bytes as `batch --json` / `solve --json`) extended with the
/// clock-tree fields `skew_ps`, `latency_min_ps`, `latency_max_ps`,
/// `skew_ok`, and (when a bound was set) `max_skew_ps`.
///
/// # Errors
///
/// [`SolveError::Unsupported`] when the scenario did not solve for a skew
/// target, and [`SolveError::Verify`] when the corner's tree rejects
/// forward evaluation.
#[allow(clippy::too_many_arguments)]
pub fn skew_record(
    net_name: &str,
    index: usize,
    tree: &RoutingTree,
    library: &BufferLibrary,
    corner: &ScenarioOutcome,
    named: bool,
    include_placements: bool,
    max_skew: Option<fastbuf_buflib::units::Seconds>,
) -> Result<String, SolveError> {
    let scenario = &corner.scenario;
    let skew = corner.skew().ok_or_else(|| SolveError::Unsupported {
        scenario: scenario.name.clone(),
        reason: "skew records cover skew-target solves only".into(),
    })?;
    let named_err = |e| SolveError::Verify {
        scenario: scenario.name.clone(),
        error: VerifyError::Tree(e),
    };
    let corner_tree = scenario.apply_derate(tree);
    let corner_tree = &*corner_tree;
    let before =
        elmore::evaluate_with(corner_tree, library, &[], &*corner.model).map_err(named_err)?;
    let measured = elmore::evaluate_with(
        corner_tree,
        library,
        &skew.placement_pairs(),
        &*corner.model,
    )
    .map_err(named_err)?;
    let record = NetRecordOwned {
        name: net_name.to_owned(),
        index,
        scenario: named.then(|| scenario.name.clone()),
        sinks: tree.sink_count(),
        sites: tree.buffer_site_count(),
        slack_before: before.slack,
        slack_after: skew.slack,
        slew_before: before.max_slew,
        max_slew: measured.max_slew,
        // The skew DP takes no slew limit (Elmore-only, unconstrained).
        slew_ok: true,
        buffers: skew.placements.len(),
        cost: skew
            .placements
            .iter()
            .map(|p| library.get(p.buffer).cost())
            .sum(),
        elapsed: corner.elapsed,
        placements: include_placements.then(|| skew.placements.clone()),
    };
    // Splice the skew fields into the shared record so the common prefix
    // stays byte-identical to every other producer of the schema.
    let mut json = record.to_json();
    let popped = json.pop();
    debug_assert_eq!(popped, Some('}'));
    json.push_str(&format!(
        ", \"skew_ps\": {}, \"latency_min_ps\": {}, \"latency_max_ps\": {}, \"skew_ok\": {}",
        json_f64(skew.skew.picos()),
        json_f64(skew.latency_min.picos()),
        json_f64(skew.latency_max.picos()),
        if skew.skew_ok { "true" } else { "false" },
    ));
    if let Some(bound) = max_skew {
        json.push_str(&format!(", \"max_skew_ps\": {}", json_f64(bound.picos())));
    }
    json.push('}');
    Ok(json)
}

/// A `SolveError` as a wire error code: the stable kebab-case kind of the
/// variant (see [`SolveError::kind`]).
pub fn solve_error_frame(id: Option<&Json>, error: &SolveError) -> String {
    error_frame(id, error.kind(), &error.to_string())
}

/// Serializes one yield-target scenario's
/// [`VariationOutcome`](crate::VariationOutcome) — the
/// per-scenario record of `solve --variation --json` and the server's
/// variation replies.
///
/// The record is **deterministic for a given seed**: it deliberately
/// carries no wall-clock field and no cache counters (how many subtrees a
/// worker recomputed depends on how samples were sharded across workers),
/// and every number comes from the fixed-order summary, so the same
/// request produces byte-identical JSON at every worker count (asserted
/// by the differential harness). Cache counters stay available on
/// [`VariationSummary`](crate::VariationSummary) for telemetry.
///
/// `named` adds a `"scenario"` key (multi-corner runs);
/// `include_samples` appends the full `"per_sample"` array.
///
/// # Errors
///
/// [`SolveError::Unsupported`] when the scenario did not solve for yield.
pub fn variation_record(
    corner: &ScenarioOutcome,
    named: bool,
    include_samples: bool,
) -> Result<String, SolveError> {
    let outcome = corner.variation().ok_or_else(|| SolveError::Unsupported {
        scenario: corner.scenario.name.clone(),
        reason: "variation records cover yield-target solves only".into(),
    })?;
    let s = &outcome.summary;
    let mut record = String::from("{");
    if named {
        record.push_str(&format!(
            "\"scenario\": {}, ",
            json_str(&corner.scenario.name)
        ));
    }
    record.push_str(&format!(
        "\"samples\": {}, \"quantile\": {}, \"quantile_slack_ps\": {}, \
         \"min_slack_ps\": {}, \"max_slack_ps\": {}, \"mean_slack_ps\": {}, \
         \"yield\": {}",
        s.samples,
        json_f64(s.quantile),
        json_f64(s.quantile_slack.picos()),
        json_f64(s.min_slack.picos()),
        json_f64(s.max_slack.picos()),
        json_f64(s.mean_slack.picos()),
        json_f64(s.yield_fraction),
    ));
    if include_samples {
        let rows: Vec<String> = outcome
            .samples
            .iter()
            .map(|r| {
                format!(
                    "{{\"index\": {}, \"slack_ps\": {}, \"slew_ok\": {}}}",
                    r.index,
                    json_f64(r.slack.picos()),
                    r.slew_ok
                )
            })
            .collect();
        record.push_str(&format!(", \"per_sample\": [{}]", rows.join(", ")));
    }
    record.push('}');
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scenario, Session};
    use fastbuf_buflib::units::Microns;

    #[test]
    fn json_round_trips() {
        let text = r#"{"v": 1, "id": "a-7", "n": -2.5e3, "flag": true,
                       "nested": {"arr": [1, 2, 3], "z": null},
                       "uni": "sn\u00f6 \ud83d\ude00 tab\t"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("a-7"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-2500.0));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        let nested = v.get("nested").unwrap();
        assert_eq!(nested.get("arr").and_then(Json::as_array).unwrap().len(), 3);
        assert_eq!(nested.get("z"), Some(&Json::Null));
        assert_eq!(v.get("uni").and_then(Json::as_str), Some("snö 😀 tab\t"));
        // Serialize → reparse is the identity.
        let again = Json::parse(&v.to_json()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn json_rejects_malformed_input() {
        for (text, what) in [
            ("", "unexpected end"),
            ("{", "unterminated object"),
            ("[1,]", "expected after comma"),
            ("{\"a\": 1,}", "expected key"),
            ("nul", "bad literal"),
            ("01", "trailing content"),
            ("1 2", "trailing content"),
            ("\"\\q\"", "invalid escape"),
            ("\"\\ud800\"", "lone surrogate"),
            ("{\"a\": 1, \"a\": 2}", "duplicate key"),
            ("-", "expected digits"),
            ("1.e3", "digits after ."),
        ] {
            assert!(Json::parse(text).is_err(), "{what}: `{text}` parsed");
        }
        // Depth bomb rejected, not recursed into.
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn envelope_parses_every_op() {
        let (id, op) = parse_frame(r#"{"v": 1, "id": 7, "op": "ping"}"#);
        assert_eq!(id, Some(Json::Num(7.0)));
        assert_eq!(op.unwrap(), Op::Ping);

        let (_, op) = parse_frame(
            r#"{"v": 1, "op": "load", "design": "d1", "net": "...", "lib_path": "/x.lib"}"#,
        );
        assert_eq!(
            op.unwrap(),
            Op::Load {
                design: "d1".into(),
                net: Source::Text("...".into()),
                lib: Source::Path("/x.lib".into()),
                model: None,
            }
        );

        let (_, op) = parse_frame(
            r#"{"v": 1, "op": "solve", "design": "d1",
                "scenarios": ["typical", "slow derate=0.9"],
                "algo": "lillis", "placements": true, "deadline_ms": 250}"#,
        );
        match op.unwrap() {
            Op::Solve(p) => {
                assert_eq!(p.design, "d1");
                assert_eq!(p.scenarios.as_deref().unwrap().len(), 2);
                assert_eq!(p.algorithm, Some(Algorithm::Lillis));
                assert!(p.placements && p.verify);
                assert_eq!(p.deadline_ms, Some(250));
            }
            other => panic!("{other:?}"),
        }

        let (_, op) = parse_frame(
            r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["rat n5 820"], "verify": false}"#,
        );
        match op.unwrap() {
            Op::Eco { params, edits } => {
                assert_eq!(edits, vec!["rat n5 820".to_owned()]);
                assert!(!params.verify);
            }
            other => panic!("{other:?}"),
        }

        let (_, op) = parse_frame(r#"{"v": 1, "op": "unload", "design": "d2"}"#);
        assert_eq!(
            op.unwrap(),
            Op::Unload {
                design: "d2".into()
            }
        );
        assert_eq!(
            parse_frame(r#"{"v": 1, "op": "stats"}"#).1.unwrap(),
            Op::Stats
        );
        assert_eq!(
            parse_frame(r#"{"v": 1, "op": "shutdown"}"#).1.unwrap(),
            Op::Shutdown
        );
    }

    #[test]
    fn envelope_errors_are_typed_and_keep_the_id() {
        let (id, op) = parse_frame("not json at all");
        assert!(id.is_none());
        assert_eq!(op.unwrap_err().code(), "parse");

        let (id, op) = parse_frame(r#"{"v": 2, "id": "x", "op": "ping"}"#);
        assert_eq!(
            id.and_then(|v| v.as_str().map(str::to_owned)),
            Some("x".into())
        );
        let err = op.unwrap_err();
        assert_eq!(err.code(), "unsupported-version");
        assert!(err.to_string().contains("v1"), "{err}");

        let (_, op) = parse_frame(r#"{"id": 1, "op": "ping"}"#);
        assert!(matches!(op.unwrap_err(), WireError::Version { got: None }));

        let (_, op) = parse_frame(r#"{"v": 1, "op": "frobnicate"}"#);
        assert_eq!(op.unwrap_err().code(), "unknown-op");

        let (_, op) = parse_frame(r#"{"v": 1, "op": "solve"}"#);
        let err = op.unwrap_err();
        assert_eq!(err.code(), "bad-request");
        assert!(err.to_string().contains("design"), "{err}");

        let (_, op) = parse_frame(r#"{"v": 1, "op": "eco", "design": "d", "edits": []}"#);
        assert_eq!(op.unwrap_err().code(), "bad-request");

        let (_, op) = parse_frame(r#"{"v": 1, "op": "solve", "design": "d", "algo": "quantum"}"#);
        assert_eq!(op.unwrap_err().code(), "bad-request");

        let (_, op) = parse_frame("[1, 2]");
        assert_eq!(op.unwrap_err().code(), "bad-request");
    }

    #[test]
    fn response_frames_are_valid_json() {
        let id = Json::Str("req-1".into());
        let ok = ok_frame(Some(&id), "{\"pong\": true}");
        let v = Json::parse(&ok).unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(WIRE_VERSION));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("req-1"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert!(v.get("result").unwrap().get("pong").is_some());

        let err = error_frame(None, "deadline", "took 12 ms, deadline was 5 ms");
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let e = v.get("error").unwrap();
        assert_eq!(e.get("code").and_then(Json::as_str), Some("deadline"));
        assert!(e
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("12 ms"));
    }

    #[test]
    fn solve_params_carry_the_variation_block() {
        let (_, op) = parse_frame(
            r#"{"v": 1, "op": "solve", "design": "d1",
                "variation": "wire-r normal 1 0.05\nseed 9\n",
                "samples": 16, "quantile": 0.25}"#,
        );
        match op.unwrap() {
            Op::Solve(p) => {
                assert!(p.variation.as_deref().unwrap().contains("wire-r"));
                assert_eq!(p.samples, Some(16));
                assert_eq!(p.quantile, Some(0.25));
            }
            other => panic!("{other:?}"),
        }
        // Absent block parses to None without complaint.
        let (_, op) = parse_frame(r#"{"v": 1, "op": "solve", "design": "d1"}"#);
        match op.unwrap() {
            Op::Solve(p) => {
                assert_eq!(p.variation, None);
                assert_eq!(p.samples, None);
                assert_eq!(p.quantile, None);
            }
            other => panic!("{other:?}"),
        }
        let (_, op) =
            parse_frame(r#"{"v": 1, "op": "solve", "design": "d1", "quantile": "median"}"#);
        assert_eq!(op.unwrap_err().code(), "bad-request");
        let (_, op) = parse_frame(r#"{"v": 1, "op": "solve", "design": "d1", "samples": -3}"#);
        assert_eq!(op.unwrap_err().code(), "bad-request");
    }

    #[test]
    fn variation_record_is_deterministic_json() {
        let session = Session::new(fastbuf_buflib::BufferLibrary::paper_synthetic(8).unwrap());
        let tree = fastbuf_netgen::RandomNetSpec {
            sinks: 12,
            seed: 5,
            ..Default::default()
        }
        .build();
        let spec = fastbuf_netgen::VariationSpec::gaussian(0.05, 0.3, 11);
        let solve = |workers| {
            session
                .request(&tree)
                .objective(crate::Objective::YieldTarget {
                    samples: 6,
                    quantile: 0.5,
                })
                .variation(spec.clone())
                .workers(workers)
                .solve()
                .unwrap()
        };
        let a = solve(1);
        let b = solve(2);
        let ja = variation_record(&a.scenarios[0], true, true).unwrap();
        let jb = variation_record(&b.scenarios[0], true, true).unwrap();
        assert_eq!(ja, jb, "records must not depend on the worker count");
        let v = Json::parse(&ja).unwrap();
        assert_eq!(v.get("samples").and_then(Json::as_u64), Some(6));
        assert_eq!(v.get("quantile").and_then(Json::as_f64), Some(0.5));
        assert_eq!(
            v.get("per_sample").and_then(Json::as_array).unwrap().len(),
            6
        );
        assert!(v.get("yield").and_then(Json::as_f64).is_some());
        // A max-slack corner has no variation record.
        let plain = session.request(&tree).solve().unwrap();
        assert!(matches!(
            variation_record(&plain.scenarios[0], false, false),
            Err(SolveError::Unsupported { .. })
        ));
    }

    #[test]
    fn scenario_record_matches_a_direct_solve() {
        let session = Session::new(fastbuf_buflib::BufferLibrary::paper_synthetic(8).unwrap());
        let tree = fastbuf_netgen::line_net(Microns::new(9_000.0), 8);
        let outcome = session
            .request(&tree)
            .scenario(Scenario::named("typical"))
            .scenario(Scenario::named("slow").rat_derate(0.9))
            .solve()
            .unwrap();
        for (k, corner) in outcome.scenarios.iter().enumerate() {
            let record =
                scenario_record("net-a", 0, &tree, session.library(), corner, true, true).unwrap();
            let solution = corner.solution().unwrap();
            assert_eq!(
                record.slack_after.value().to_bits(),
                solution.slack.value().to_bits()
            );
            assert_eq!(
                record.scenario.as_deref(),
                Some(corner.scenario.name.as_str())
            );
            assert_eq!(record.buffers, solution.placements.len());
            assert_eq!(
                record.placements.as_deref(),
                Some(solution.placements.as_slice())
            );
            assert_eq!(record.sinks, tree.sink_count());
            // The derated corner's baseline differs from the underated one.
            if k == 1 {
                assert_ne!(
                    record.slack_before.value().to_bits(),
                    outcome.scenarios[0]
                        .solution()
                        .unwrap()
                        .slack
                        .value()
                        .to_bits()
                );
            }
            // The record serializes through the shared schema.
            let json = record.to_json();
            assert!(json.contains("\"scenario\""));
            assert!(json.contains("\"slack_after_ps\""));
        }
    }
}
