//! The unified result envelope.

use std::sync::Arc;
use std::time::Duration;

use fastbuf_buflib::units::Seconds;
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::cost::CostFrontier;
use fastbuf_core::polarity::PolaritySolution;
use fastbuf_core::skew::SkewSolution;
use fastbuf_core::{Algorithm, Solution, VerifyError};
use fastbuf_rctree::{elmore, DelayModel, NodeKind, RoutingTree};

use crate::error::SolveError;
use crate::request::Objective;
use crate::scenario::Scenario;
use crate::variation::VariationOutcome;

/// The per-scenario payload of a solve.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum ScenarioResult {
    /// A single best-slack solution ([`Objective::MaxSlack`]).
    Solution(Solution),
    /// The slack-vs-cost Pareto frontier ([`Objective::SlackCost`]).
    Frontier(CostFrontier),
    /// A polarity-aware solution ([`Objective::PolarityAware`]).
    Polarity(PolaritySolution),
    /// A Monte-Carlo slack distribution ([`Objective::YieldTarget`]).
    Variation(VariationOutcome),
    /// A skew-aware solution ([`Objective::SkewTarget`]).
    Skew(SkewSolution),
}

/// One scenario's result, together with the configuration that actually
/// produced it — in particular the delay model, so verification re-measures
/// with the same arithmetic the DP predicted with instead of silently
/// assuming Elmore.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ScenarioOutcome {
    /// The scenario as requested.
    pub scenario: Scenario,
    /// The delay model actually used (the scenario override, or the
    /// session default).
    pub model: Arc<dyn DelayModel>,
    /// The `AddBuffer` algorithm actually used.
    pub algorithm: Algorithm,
    /// The payload.
    pub result: ScenarioResult,
    /// Wall-clock time of this scenario's solve.
    pub elapsed: Duration,
}

impl ScenarioOutcome {
    /// The solution, if this scenario solved for max slack.
    pub fn solution(&self) -> Option<&Solution> {
        match &self.result {
            ScenarioResult::Solution(s) => Some(s),
            _ => None,
        }
    }

    /// The frontier, if this scenario solved for slack-vs-cost.
    pub fn frontier(&self) -> Option<&CostFrontier> {
        match &self.result {
            ScenarioResult::Frontier(f) => Some(f),
            _ => None,
        }
    }

    /// The polarity solution, if this scenario was polarity-aware.
    pub fn polarity(&self) -> Option<&PolaritySolution> {
        match &self.result {
            ScenarioResult::Polarity(p) => Some(p),
            _ => None,
        }
    }

    /// The Monte-Carlo distribution, if this scenario solved for yield.
    pub fn variation(&self) -> Option<&VariationOutcome> {
        match &self.result {
            ScenarioResult::Variation(v) => Some(v),
            _ => None,
        }
    }

    /// The skew-aware solution, if this scenario solved for a skew target.
    pub fn skew(&self) -> Option<&SkewSolution> {
        match &self.result {
            ScenarioResult::Skew(s) => Some(s),
            _ => None,
        }
    }

    /// The scenario's headline slack: the solution slack, the best
    /// frontier point, the polarity solution's slack, or the requested
    /// quantile of the sampled slack distribution.
    pub fn slack(&self) -> Option<Seconds> {
        match &self.result {
            ScenarioResult::Solution(s) => Some(s.slack),
            ScenarioResult::Frontier(f) => f.points.last().map(|p| p.slack),
            ScenarioResult::Polarity(p) => Some(p.slack),
            ScenarioResult::Variation(v) => Some(v.summary.quantile_slack),
            ScenarioResult::Skew(s) => Some(s.slack),
        }
    }
}

/// The result of [`SolveRequest::solve`](crate::SolveRequest::solve): one
/// [`ScenarioOutcome`] per requested scenario, in request order.
///
/// ```
/// use fastbuf_api::{Scenario, Session};
/// use fastbuf_buflib::units::{Microns, Seconds};
/// use fastbuf_buflib::BufferLibrary;
///
/// let session = Session::new(BufferLibrary::paper_synthetic(8)?);
/// let tree = fastbuf_netgen::line_net(Microns::new(10_000.0), 9);
/// let outcome = session
///     .request(&tree)
///     .scenario(Scenario::named("typical"))
///     .scenario(Scenario::named("slew").slew_limit(Seconds::from_pico(250.0)))
///     .solve()?;
/// assert_eq!(outcome.scenarios.len(), 2);
/// // Per-scenario results are addressed by name:
/// let typical = outcome.scenario("typical").unwrap();
/// assert!(typical.solution().is_some());
/// // The worst corner decides whether the net closes timing:
/// assert!(outcome.worst_slack().unwrap() <= typical.solution().unwrap().slack);
/// outcome.verify(&tree, session.library())?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct Outcome {
    /// The objective every scenario solved for.
    pub objective: Objective,
    /// Per-scenario outcomes, in request order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Wall-clock time of the whole request.
    pub elapsed: Duration,
}

impl Outcome {
    /// The outcome of the scenario with the given name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioOutcome> {
        self.scenarios.iter().find(|s| s.scenario.name == name)
    }

    /// The single solution of a one-scenario max-slack request (the common
    /// case); `None` for multi-scenario or non-max-slack requests.
    pub fn solution(&self) -> Option<&Solution> {
        match self.scenarios.as_slice() {
            [only] => only.solution(),
            _ => None,
        }
    }

    /// The worst (smallest) headline slack across scenarios — the
    /// multi-corner answer to "does this net close timing?".
    pub fn worst_slack(&self) -> Option<Seconds> {
        self.scenarios
            .iter()
            .filter_map(ScenarioOutcome::slack)
            .min_by(|a, b| a.value().total_cmp(&b.value()))
    }

    /// Re-measures every scenario's result with the independent forward
    /// evaluator **under the delay model and derate that scenario actually
    /// solved with** and checks the measured slack against the DP's
    /// prediction.
    ///
    /// This is the model-safe replacement for the legacy
    /// [`Solution::verify`] shim, which always measures with Elmore and
    /// therefore reports a false mismatch for solves under any other
    /// model.
    ///
    /// `tree` must be the tree the request was solved on (underated —
    /// scenario derates are re-applied here).
    ///
    /// # Errors
    ///
    /// [`SolveError::Verify`] naming the first scenario whose measurement
    /// disagrees with its prediction; [`SolveError::Polarity`] for
    /// polarity requirement violations.
    pub fn verify(&self, tree: &RoutingTree, library: &BufferLibrary) -> Result<(), SolveError> {
        for so in &self.scenarios {
            let scenario_tree = so.scenario.apply_derate(tree);
            let scenario_tree = &*scenario_tree;
            let named = |error: VerifyError| SolveError::Verify {
                scenario: so.scenario.name.clone(),
                error,
            };
            match &so.result {
                ScenarioResult::Solution(solution) => {
                    solution
                        .verify_with(scenario_tree, library, &*so.model)
                        .map_err(named)?;
                }
                ScenarioResult::Frontier(frontier) => {
                    for point in &frontier.points {
                        let pairs: Vec<_> = point
                            .placements
                            .iter()
                            .map(|p| (p.node, p.buffer))
                            .collect();
                        let report =
                            elmore::evaluate_with(scenario_tree, library, &pairs, &*so.model)
                                .map_err(|e| named(VerifyError::Tree(e)))?;
                        let (predicted, measured) = (point.slack.value(), report.slack.value());
                        let tol = 1e-9 * predicted.abs().max(measured.abs()).max(1e-12);
                        if (predicted - measured).abs() > tol {
                            return Err(named(VerifyError::SlackMismatch {
                                predicted: point.slack,
                                measured: report.slack,
                            }));
                        }
                    }
                }
                ScenarioResult::Variation(_) => {
                    // Sampled sweeps do not track placements (there is
                    // nothing to forward-evaluate here); their correctness
                    // contract is per-sample bit-identity to a scratch
                    // solve of the sampled tree, asserted by the
                    // differential harness `tests/variation_equivalence.rs`.
                }
                ScenarioResult::Skew(skew) => {
                    let report = elmore::evaluate_with(
                        scenario_tree,
                        library,
                        &skew.placement_pairs(),
                        &*so.model,
                    )
                    .map_err(|e| named(VerifyError::Tree(e)))?;
                    let (predicted, measured) = (skew.slack.value(), report.slack.value());
                    let tol = 1e-9 * predicted.abs().max(measured.abs()).max(1e-12);
                    if (predicted - measured).abs() > tol {
                        return Err(named(VerifyError::SlackMismatch {
                            predicted: skew.slack,
                            measured: report.slack,
                        }));
                    }
                    // Re-measure the skew itself: arrival = RAT − slack per
                    // sink, skew = max − min arrival.
                    let arrivals =
                        report
                            .sink_slacks
                            .iter()
                            .map(|&(n, s)| match scenario_tree.kind(n) {
                                NodeKind::Sink {
                                    required_arrival, ..
                                } => required_arrival.value() - s.value(),
                                _ => unreachable!("sink_slacks only lists sinks"),
                            });
                    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
                    for a in arrivals {
                        lo = lo.min(a);
                        hi = hi.max(a);
                    }
                    let measured_skew = hi - lo;
                    let predicted_skew = skew.skew.value();
                    let tol = 1e-9 * measured_skew.abs().max(1e-12);
                    if (predicted_skew - measured_skew).abs() > tol {
                        return Err(named(VerifyError::SlackMismatch {
                            predicted: skew.skew,
                            measured: Seconds::new(measured_skew),
                        }));
                    }
                }
                ScenarioResult::Polarity(polarity) => {
                    let negated: &[_] = match &self.objective {
                        Objective::PolarityAware { negated_sinks } => negated_sinks,
                        _ => &[],
                    };
                    polarity
                        .verify_with(scenario_tree, library, negated)
                        .map_err(SolveError::Polarity)?;
                }
            }
        }
        Ok(())
    }
}
