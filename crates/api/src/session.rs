//! The shared solve context.

use std::sync::{Arc, Mutex};

use fastbuf_buflib::{BufferLibrary, Technology};
use fastbuf_core::SolveWorkspace;
use fastbuf_rctree::{DelayModel, ElmoreModel, RoutingTree};

use crate::request::SolveRequest;

/// The immutable shared context every solve needs: the buffer library, the
/// interconnect technology, the default delay model, and a pool of
/// reusable [`SolveWorkspace`]s.
///
/// A `Session` is cheap to clone (one `Arc` bump) and safe to share across
/// threads; clones share the workspace pool, so warm workspaces are reused
/// wherever the next request runs. Create one per library/technology pair
/// and issue [`SolveRequest`]s from it:
///
/// ```
/// use fastbuf_api::Session;
/// use fastbuf_buflib::units::Microns;
/// use fastbuf_buflib::BufferLibrary;
///
/// let session = Session::new(BufferLibrary::paper_synthetic(8)?);
/// let tree = fastbuf_netgen::line_net(Microns::new(10_000.0), 9);
/// let outcome = session.request(&tree).solve()?;
/// let solution = outcome.solution().expect("max-slack objective");
/// assert!(!solution.placements.is_empty());
/// outcome.verify(&tree, session.library())?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Session {
    inner: Arc<SessionInner>,
}

#[derive(Debug)]
struct SessionInner {
    library: BufferLibrary,
    technology: Technology,
    delay_model: Arc<dyn DelayModel>,
    workspaces: Mutex<Vec<SolveWorkspace>>,
}

impl Session {
    /// A session over `library` with the default technology
    /// ([`Technology::tsmc180_like`]) and delay model ([`ElmoreModel`]).
    pub fn new(library: BufferLibrary) -> Self {
        Session::builder(library).build()
    }

    /// Starts configuring a session.
    pub fn builder(library: BufferLibrary) -> SessionBuilder {
        SessionBuilder {
            library,
            technology: Technology::tsmc180_like(),
            delay_model: Arc::new(ElmoreModel),
        }
    }

    /// The shared buffer library.
    pub fn library(&self) -> &BufferLibrary {
        &self.inner.library
    }

    /// The interconnect technology (per-micron wire parasitics) this
    /// session's nets are built against.
    ///
    /// This is *carried context* for code that constructs or segments
    /// wires around the session (`Wire::from_length(session.technology(),
    /// ..)`) — solves never read it, because a built
    /// [`RoutingTree`](fastbuf_rctree::RoutingTree)'s wires already carry
    /// their parasitics. Changing it does not change any solve result.
    pub fn technology(&self) -> &Technology {
        &self.inner.technology
    }

    /// The default delay model — used by every scenario that does not
    /// override it.
    pub fn delay_model(&self) -> &Arc<dyn DelayModel> {
        &self.inner.delay_model
    }

    /// Starts a solve request for one net. The returned builder borrows
    /// both the session and the tree; finish with
    /// [`SolveRequest::solve`](crate::SolveRequest::solve).
    pub fn request<'a>(&'a self, tree: &'a RoutingTree) -> SolveRequest<'a> {
        SolveRequest::new(self, tree)
    }

    /// Number of idle workspaces currently pooled — a diagnostics hook;
    /// the pool grows to the largest number of concurrently-solving
    /// threads and is then reused by every later request.
    pub fn pooled_workspaces(&self) -> usize {
        self.inner
            .workspaces
            .lock()
            .expect("workspace pool lock is never poisoned")
            .len()
    }

    /// Checks a warm workspace out of the pool (or creates a fresh one).
    pub(crate) fn take_workspace(&self) -> SolveWorkspace {
        self.inner
            .workspaces
            .lock()
            .expect("workspace pool lock is never poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a workspace to the pool for the next request.
    pub(crate) fn return_workspace(&self, workspace: SolveWorkspace) {
        self.inner
            .workspaces
            .lock()
            .expect("workspace pool lock is never poisoned")
            .push(workspace);
    }
}

/// Configures and builds a [`Session`].
#[derive(Debug)]
pub struct SessionBuilder {
    library: BufferLibrary,
    technology: Technology,
    delay_model: Arc<dyn DelayModel>,
}

impl SessionBuilder {
    /// Sets the interconnect technology carried by the session (context
    /// for wire construction — see [`Session::technology`]; solves never
    /// read it).
    #[must_use]
    pub fn technology(mut self, technology: Technology) -> Self {
        self.technology = technology;
        self
    }

    /// Sets the default delay model (scenarios may override per corner).
    #[must_use]
    pub fn delay_model(mut self, model: Arc<dyn DelayModel>) -> Self {
        self.delay_model = model;
        self
    }

    /// Builds the session.
    pub fn build(self) -> Session {
        Session {
            inner: Arc::new(SessionInner {
                library: self.library,
                technology: self.technology,
                delay_model: self.delay_model,
                workspaces: Mutex::new(Vec::new()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_rctree::ScaledElmoreModel;

    #[test]
    fn clones_share_the_workspace_pool() {
        let session = Session::new(BufferLibrary::paper_synthetic(4).unwrap());
        let clone = session.clone();
        assert_eq!(session.pooled_workspaces(), 0);
        let ws = session.take_workspace();
        clone.return_workspace(ws);
        assert_eq!(session.pooled_workspaces(), 1);
        // Taking from either end drains the shared pool.
        let _ws = clone.take_workspace();
        assert_eq!(session.pooled_workspaces(), 0);
    }

    #[test]
    fn builder_overrides_stick() {
        let session = Session::builder(BufferLibrary::paper_synthetic(2).unwrap())
            .technology(Technology::new(
                fastbuf_buflib::units::Ohms::new(0.1),
                fastbuf_buflib::units::Farads::from_femto(0.2),
            ))
            .delay_model(Arc::new(ScaledElmoreModel::default()))
            .build();
        assert_eq!(session.delay_model().name(), "scaled-elmore");
        assert_eq!(session.library().len(), 2);
        let (r, _) = session
            .technology()
            .wire(fastbuf_buflib::units::Microns::new(10.0));
        assert!((r.value() - 1.0).abs() < 1e-12);
    }
}
