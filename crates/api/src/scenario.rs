//! Timing scenarios (corners) of a [`SolveRequest`](crate::SolveRequest).
//!
//! A scenario is one "question" asked of a net: which delay model to
//! predict with, how tight the slew constraint is, how pessimistically to
//! derate the sinks' required arrival times, and which `AddBuffer`
//! algorithm to run. A multi-corner request carries several scenarios and
//! the [`Outcome`](crate::Outcome) reports one result per scenario —
//! exactly the question production flows ask ("does this net close timing
//! in the slow corner *and* meet slew in the fast one?").

use std::borrow::Cow;
use std::sync::Arc;

use fastbuf_buflib::units::Seconds;
use fastbuf_core::Algorithm;
use fastbuf_rctree::{model_by_name, DelayModel, RoutingTree};

use crate::error::SolveError;

/// One timing scenario (corner) of a request.
///
/// Construct with [`Scenario::named`] (or [`Scenario::default`], named
/// `"default"`) and refine with the builder methods; the struct is
/// `#[non_exhaustive]` so new knobs can be added without breaking callers.
///
/// An untouched scenario asks the exact question the legacy
/// `Solver::new(..).solve()` shim asks: Elmore model (or the session
/// default), no slew limit, no derate, [`Algorithm::LiShi`] — and is
/// guaranteed bit-identical to it.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct Scenario {
    /// Scenario name; unique within a request (results are addressed by
    /// it).
    pub name: String,
    /// Delay model override (`None` = the session's default model).
    pub delay_model: Option<Arc<dyn DelayModel>>,
    /// Maximum output slew at every buffer input and sink (`None` =
    /// unconstrained).
    pub slew_limit: Option<Seconds>,
    /// Factor applied to every sink's required arrival time (`1.0` = no
    /// derate; a pessimistic corner uses `< 1.0`).
    pub rat_derate: f64,
    /// `AddBuffer` algorithm override (`None` = [`Algorithm::LiShi`]).
    pub algorithm: Option<Algorithm>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario::named("default")
    }
}

impl Scenario {
    /// A scenario with the given name and all knobs at their defaults.
    pub fn named(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            delay_model: None,
            slew_limit: None,
            rat_derate: 1.0,
            algorithm: None,
        }
    }

    /// Overrides the delay model for this scenario.
    #[must_use]
    pub fn delay_model(mut self, model: Arc<dyn DelayModel>) -> Self {
        self.delay_model = Some(model);
        self
    }

    /// Sets (or, with a non-finite value, clears) the maximum output slew.
    #[must_use]
    pub fn slew_limit(mut self, limit: Seconds) -> Self {
        self.slew_limit = limit.is_finite().then_some(limit);
        self
    }

    /// Sets the required-time derate factor.
    #[must_use]
    pub fn rat_derate(mut self, factor: f64) -> Self {
        self.rat_derate = factor;
        self
    }

    /// Overrides the `AddBuffer` algorithm for this scenario.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// The tree this scenario actually solves and verifies against: the
    /// input itself when [`Scenario::rat_derate`] is `1.0`, otherwise a
    /// derated copy (every sink's required arrival time scaled). This is
    /// the single owner of the derate rule — the request layer, outcome
    /// verification, and the CLI all route through it.
    pub fn apply_derate<'t>(&self, tree: &'t RoutingTree) -> Cow<'t, RoutingTree> {
        if self.rat_derate != 1.0 {
            Cow::Owned(tree.with_derated_rats(self.rat_derate))
        } else {
            Cow::Borrowed(tree)
        }
    }

    /// Checks the scenario's knobs are in range.
    ///
    /// A finite non-positive `slew_limit` is deliberately *valid* here: it
    /// matches the legacy `Solver::slew_limit` contract (every candidate is
    /// infeasible, the solve is best-effort and reports `slew_ok = false`,
    /// never panics), which the batch and design layers rely on. Scenario
    /// *files* reject non-positive limits at parse time, where they are a
    /// typo rather than a deliberate stress input — see
    /// [`parse_scenarios`].
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidDerate`].
    pub fn validate(&self) -> Result<(), SolveError> {
        if !(self.rat_derate.is_finite() && self.rat_derate > 0.0) {
            return Err(SolveError::InvalidDerate {
                scenario: self.name.clone(),
                derate: self.rat_derate,
            });
        }
        Ok(())
    }
}

/// Validates a scenario list for a request: every scenario in range,
/// names unique. Shared by [`SolveRequest`](crate::SolveRequest) and the
/// ECO entry ([`Session::eco`](crate::Session::eco)).
pub(crate) fn validate_scenario_list(scenarios: &[Scenario]) -> Result<(), SolveError> {
    for (i, scenario) in scenarios.iter().enumerate() {
        scenario.validate()?;
        if scenarios[..i].iter().any(|s| s.name == scenario.name) {
            return Err(SolveError::DuplicateScenario(scenario.name.clone()));
        }
    }
    Ok(())
}

/// Parses a scenario file: one scenario per line,
///
/// ```text
/// # name [model=elmore|scaled-elmore] [slew-limit-ps=N] [derate=F] [algo=A]
/// typical
/// slow    derate=0.9  slew-limit-ps=250
/// fast    model=scaled-elmore  algo=lillis
/// ```
///
/// Blank lines and `#` comments are ignored.
///
/// # Errors
///
/// [`SolveError::ScenarioParse`] (bad tokens, repeated keys, duplicate
/// names), [`SolveError::UnknownModel`], and the range errors of
/// [`Scenario::validate`].
///
/// # Example
///
/// ```
/// let scenarios = fastbuf_api::parse_scenarios(
///     "typical\nslow derate=0.9 slew-limit-ps=250\n",
/// )?;
/// assert_eq!(scenarios.len(), 2);
/// assert_eq!(scenarios[1].name, "slow");
/// assert_eq!(scenarios[1].rat_derate, 0.9);
/// # Ok::<(), fastbuf_api::SolveError>(())
/// ```
pub fn parse_scenarios(text: &str) -> Result<Vec<Scenario>, SolveError> {
    let mut scenarios: Vec<Scenario> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let parse_err = |message: String| SolveError::ScenarioParse { line, message };
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        let name = tokens.next().expect("non-empty line has a first token");
        if name.contains('=') {
            return Err(parse_err(format!(
                "expected a scenario name first, got `{name}`"
            )));
        }
        if scenarios.iter().any(|s| s.name == name) {
            return Err(SolveError::DuplicateScenario(name.to_owned()));
        }
        let mut scenario = Scenario::named(name);
        let mut derate_set = false;
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| parse_err(format!("expected `key=value`, got `{token}`")))?;
            match key {
                "model" => {
                    if scenario.delay_model.is_some() {
                        return Err(parse_err("`model=` given twice".into()));
                    }
                    scenario.delay_model = Some(
                        model_by_name(value)
                            .ok_or_else(|| SolveError::UnknownModel(value.to_owned()))?,
                    );
                }
                "slew-limit-ps" => {
                    if scenario.slew_limit.is_some() {
                        return Err(parse_err("`slew-limit-ps=` given twice".into()));
                    }
                    let ps: f64 = value
                        .parse()
                        .map_err(|_| parse_err(format!("cannot parse slew limit `{value}`")))?;
                    // In a corner file a non-positive limit is a typo, not
                    // a deliberate stress input: reject it here (the
                    // programmatic `Scenario` API accepts it best-effort).
                    if !(ps.is_finite() && ps > 0.0) {
                        return Err(SolveError::InvalidSlewLimit {
                            scenario: scenario.name.clone(),
                            limit_ps: ps,
                        });
                    }
                    scenario.slew_limit = Some(Seconds::from_pico(ps));
                }
                "derate" => {
                    if derate_set {
                        return Err(parse_err("`derate=` given twice".into()));
                    }
                    derate_set = true;
                    let factor: f64 = value
                        .parse()
                        .map_err(|_| parse_err(format!("cannot parse derate `{value}`")))?;
                    scenario.rat_derate = factor;
                }
                "algo" => {
                    if scenario.algorithm.is_some() {
                        return Err(parse_err("`algo=` given twice".into()));
                    }
                    scenario.algorithm = Some(value.parse().map_err(parse_err)?);
                }
                other => {
                    return Err(parse_err(format!(
                        "unknown key `{other}` (expected model, slew-limit-ps, derate, or algo)"
                    )));
                }
            }
        }
        scenario.validate()?;
        scenarios.push(scenario);
    }
    if scenarios.is_empty() {
        return Err(SolveError::NoScenarios);
    }
    Ok(scenarios)
}

/// [`parse_scenarios`] plus default application: scenarios whose line
/// omitted `algo=` get `default_algorithm`, and scenarios whose line
/// omitted `model=` get `default_model`. This is the **one** scenario
/// deserialization path — `fastbuf solve --scenarios` and the server's
/// `"scenarios"` request field both resolve their command-level defaults
/// through it, so a scenario line can never mean different things to
/// different front ends.
///
/// # Errors
///
/// Exactly those of [`parse_scenarios`], with line numbers preserved.
pub fn parse_scenario_lines(
    text: &str,
    default_algorithm: Option<Algorithm>,
    default_model: Option<&Arc<dyn DelayModel>>,
) -> Result<Vec<Scenario>, SolveError> {
    let mut scenarios = parse_scenarios(text)?;
    for scenario in &mut scenarios {
        if scenario.algorithm.is_none() {
            scenario.algorithm = default_algorithm;
        }
        if scenario.delay_model.is_none() {
            if let Some(model) = default_model {
                scenario.delay_model = Some(Arc::clone(model));
            }
        }
    }
    Ok(scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let s = Scenario::default();
        assert_eq!(s.name, "default");
        assert!(s.delay_model.is_none() && s.slew_limit.is_none());
        assert_eq!(s.rat_derate, 1.0);
        assert!(s.algorithm.is_none());
        s.validate().unwrap();

        let s = Scenario::named("slow")
            .slew_limit(Seconds::from_pico(200.0))
            .rat_derate(0.85)
            .algorithm(Algorithm::Lillis);
        assert_eq!(s.name, "slow");
        assert_eq!(s.slew_limit, Some(Seconds::from_pico(200.0)));
        assert_eq!(s.algorithm, Some(Algorithm::Lillis));
        s.validate().unwrap();

        // A non-finite limit clears the constraint, mirroring
        // `Solver::slew_limit`.
        let s = s.slew_limit(Seconds::new(f64::INFINITY));
        assert!(s.slew_limit.is_none());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let s = Scenario::named("x").rat_derate(0.0);
        assert!(matches!(
            s.validate(),
            Err(SolveError::InvalidDerate { .. })
        ));
        // A finite non-positive slew limit is *valid* programmatically:
        // the solve runs best-effort with `slew_ok = false`, exactly like
        // the legacy `Solver::slew_limit` contract (no panic regression
        // through batch/design).
        let mut s = Scenario::named("x");
        s.slew_limit = Some(Seconds::from_pico(-4.0));
        s.validate().unwrap();
    }

    #[test]
    fn parses_full_file() {
        let text = "\
# corners for netA
typical
slow    derate=0.9  slew-limit-ps=250   # pessimistic
fast    model=scaled-elmore  algo=lillis
";
        let scenarios = parse_scenarios(text).unwrap();
        assert_eq!(scenarios.len(), 3);
        assert_eq!(scenarios[0].name, "typical");
        assert_eq!(scenarios[1].slew_limit, Some(Seconds::from_pico(250.0)));
        assert_eq!(scenarios[1].rat_derate, 0.9);
        assert_eq!(
            scenarios[2].delay_model.as_ref().unwrap().name(),
            "scaled-elmore"
        );
        assert_eq!(scenarios[2].algorithm, Some(Algorithm::Lillis));
    }

    #[test]
    fn line_parser_applies_defaults_without_overriding() {
        let model = model_by_name("scaled-elmore").unwrap();
        let text = "typical\nslow model=elmore algo=lishi\n";
        let scenarios = parse_scenario_lines(text, Some(Algorithm::Lillis), Some(&model)).unwrap();
        // Defaults fill the gaps…
        assert_eq!(scenarios[0].algorithm, Some(Algorithm::Lillis));
        assert_eq!(
            scenarios[0].delay_model.as_ref().unwrap().name(),
            "scaled-elmore"
        );
        // …but never override an explicit per-line choice.
        assert_eq!(scenarios[1].algorithm, Some(Algorithm::LiShi));
        assert_eq!(scenarios[1].delay_model.as_ref().unwrap().name(), "elmore");

        // No defaults = plain parse_scenarios.
        let scenarios = parse_scenario_lines(text, None, None).unwrap();
        assert!(scenarios[0].algorithm.is_none());
        assert!(scenarios[0].delay_model.is_none());

        // Line numbers survive the wrapper.
        assert!(matches!(
            parse_scenario_lines("ok\nbad nonsense", None, None),
            Err(SolveError::ScenarioParse { line: 2, .. })
        ));
    }

    #[test]
    fn parse_errors_are_typed() {
        assert!(matches!(parse_scenarios(""), Err(SolveError::NoScenarios)));
        assert!(matches!(
            parse_scenarios("a\na\n"),
            Err(SolveError::DuplicateScenario(n)) if n == "a"
        ));
        assert!(matches!(
            parse_scenarios("a model=spice"),
            Err(SolveError::UnknownModel(n)) if n == "spice"
        ));
        assert!(matches!(
            parse_scenarios("a nonsense"),
            Err(SolveError::ScenarioParse { line: 1, .. })
        ));
        assert!(matches!(
            parse_scenarios("ok\nb unknown=1"),
            Err(SolveError::ScenarioParse { line: 2, .. })
        ));
        assert!(matches!(
            parse_scenarios("model=elmore"),
            Err(SolveError::ScenarioParse { .. })
        ));
        assert!(matches!(
            parse_scenarios("a derate=-1"),
            Err(SolveError::InvalidDerate { .. })
        ));
        assert!(matches!(
            parse_scenarios("a slew-limit-ps=-5"),
            Err(SolveError::InvalidSlewLimit { .. })
        ));
        assert!(matches!(
            parse_scenarios("a derate=0.9 derate=1.1"),
            Err(SolveError::ScenarioParse { .. })
        ));
        assert!(matches!(
            parse_scenarios("a algo=quantum"),
            Err(SolveError::ScenarioParse { .. })
        ));
        assert!(matches!(
            parse_scenarios("a model=elmore model=elmore"),
            Err(SolveError::ScenarioParse { .. })
        ));
    }
}
