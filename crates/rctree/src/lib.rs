//! RC routing-tree substrate for the `fastbuf` buffer-insertion toolkit.
//!
//! A net is a rooted tree `T = (V, E)`: the root is the **source** (driven by
//! a [`Driver`](fastbuf_buflib::Driver)), leaves are **sinks** (load
//! capacitance + required arrival time), and internal vertices may be
//! **buffer positions** where the insertion algorithms are allowed to place
//! repeaters. Every edge is a wire with lumped resistance and capacitance
//! under the Elmore delay model:
//!
//! ```text
//! D(e) = R(e) · ( C(e)/2 + C_downstream )
//! ```
//!
//! Contents:
//!
//! * [`RoutingTree`] / [`TreeBuilder`] — validated arena tree with
//!   precomputed post-order, children CSR, and parent wires.
//! * [`elmore`] — a *forward* Elmore/linear-buffer evaluator for a fixed
//!   buffer assignment. It is deliberately independent from the dynamic
//!   programming in `fastbuf-core` so the two can cross-check each other.
//! * [`segment`] — wire segmenting (Alpert & Devgan, DAC 1997) to
//!   create candidate buffer positions along long wires; this is how the
//!   paper's `n` (number of buffer positions) is scaled in Figure 4.
//! * [`io`] — a plain-text net exchange format with parser and writer.
//!
//! # Example: a two-pin net with one buffer site
//!
//! ```
//! use fastbuf_buflib::{Driver, Technology};
//! use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
//! use fastbuf_rctree::{TreeBuilder, Wire};
//!
//! let tech = Technology::tsmc180_like();
//! let mut b = TreeBuilder::new();
//! let src = b.source(Driver::new(Ohms::new(180.0)));
//! let mid = b.buffer_site();
//! let snk = b.sink(Farads::from_femto(10.0), Seconds::from_pico(500.0));
//! b.connect(src, mid, Wire::from_length(&tech, Microns::new(500.0)))?;
//! b.connect(mid, snk, Wire::from_length(&tech, Microns::new(500.0)))?;
//! let tree = b.build()?;
//! assert_eq!(tree.sink_count(), 1);
//! assert_eq!(tree.buffer_site_count(), 1);
//! # Ok::<(), fastbuf_rctree::TreeError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod delay;
pub mod elmore;
mod error;
pub mod io;
mod node;
pub mod segment;
mod stats;
mod tree;

pub use delay::{model_by_name, DelayModel, ElmoreModel, ScaledElmoreModel};
pub use error::TreeError;
pub use node::{NodeId, NodeKind, SiteConstraint, SiteVariation, Wire};
pub use stats::TreeStats;
pub use tree::{RoutingTree, TreeBuilder};
