//! Summary statistics of a routing tree.

use std::fmt;

use fastbuf_buflib::units::{Farads, Microns, Ohms};

use crate::node::NodeKind;
use crate::tree::RoutingTree;

/// Size and parasitic summary of a [`RoutingTree`], as printed by the CLI
/// and the benchmark harnesses.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Total node count.
    pub nodes: usize,
    /// Number of sinks (the paper's `m`).
    pub sinks: usize,
    /// Number of internal vertices.
    pub internals: usize,
    /// Number of buffer positions (the paper's `n`).
    pub buffer_sites: usize,
    /// Number of edges (always `nodes - 1`).
    pub edges: usize,
    /// Maximum depth in edges from the source to any node.
    pub max_depth: usize,
    /// Sum of wire resistances.
    pub total_wire_resistance: Ohms,
    /// Sum of wire capacitances.
    pub total_wire_capacitance: Farads,
    /// Sum of sink pin capacitances.
    pub total_sink_capacitance: Farads,
    /// Total routed length, if every wire has a geometric length.
    pub total_length: Option<Microns>,
}

impl TreeStats {
    /// Computes statistics for `tree`.
    pub fn compute(tree: &RoutingTree) -> Self {
        let mut depth = vec![0usize; tree.node_count()];
        let mut max_depth = 0;
        for &node in tree.postorder().iter().rev() {
            if let Some(p) = tree.parent(node) {
                depth[node.index()] = depth[p.index()] + 1;
                max_depth = max_depth.max(depth[node.index()]);
            }
        }
        let mut total_wire_resistance = Ohms::ZERO;
        let mut total_wire_capacitance = Farads::ZERO;
        let mut total_sink_capacitance = Farads::ZERO;
        let mut total_length = Some(Microns::ZERO);
        let mut internals = 0;
        for node in tree.node_ids() {
            if let Some(w) = tree.wire_to_parent(node) {
                total_wire_resistance += w.resistance();
                total_wire_capacitance += w.capacitance();
                total_length = match (total_length, w.length()) {
                    (Some(acc), Some(l)) => Some(acc + l),
                    _ => None,
                };
            }
            match tree.kind(node) {
                NodeKind::Sink { capacitance, .. } => total_sink_capacitance += *capacitance,
                NodeKind::Internal => internals += 1,
                NodeKind::Source { .. } => {}
            }
        }
        TreeStats {
            nodes: tree.node_count(),
            sinks: tree.sink_count(),
            internals,
            buffer_sites: tree.buffer_site_count(),
            edges: tree.node_count() - 1,
            max_depth,
            total_wire_resistance,
            total_wire_capacitance,
            total_sink_capacitance,
            total_length,
        }
    }
}

impl fmt::Display for TreeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} sinks={} internals={} buffer_sites={} depth={} wire R={} C={} sink C={}",
            self.nodes,
            self.sinks,
            self.internals,
            self.buffer_sites,
            self.max_depth,
            self.total_wire_resistance,
            self.total_wire_capacitance,
            self.total_sink_capacitance,
        )?;
        if let Some(l) = self.total_length {
            write!(f, " length={l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Wire;
    use crate::tree::TreeBuilder;
    use fastbuf_buflib::units::{Ohms as O, Seconds};
    use fastbuf_buflib::{Driver, Technology};

    #[test]
    fn computes_counts_and_totals() {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let mid = b.buffer_site();
        let s1 = b.sink(Farads::from_femto(3.0), Seconds::ZERO);
        let s2 = b.sink(Farads::from_femto(4.0), Seconds::ZERO);
        b.connect(src, mid, Wire::from_length(&tech, Microns::new(100.0)))
            .unwrap();
        b.connect(mid, s1, Wire::from_length(&tech, Microns::new(50.0)))
            .unwrap();
        b.connect(mid, s2, Wire::from_length(&tech, Microns::new(50.0)))
            .unwrap();
        let stats = b.build().unwrap().stats();
        assert_eq!(stats.nodes, 4);
        assert_eq!(stats.sinks, 2);
        assert_eq!(stats.internals, 1);
        assert_eq!(stats.buffer_sites, 1);
        assert_eq!(stats.edges, 3);
        assert_eq!(stats.max_depth, 2);
        assert!((stats.total_sink_capacitance.femtos() - 7.0).abs() < 1e-9);
        assert!((stats.total_length.unwrap().value() - 200.0).abs() < 1e-9);
        assert!((stats.total_wire_resistance.value() - 0.076 * 200.0).abs() < 1e-9);
        let s = stats.to_string();
        assert!(s.contains("sinks=2"));
        assert!(s.contains("length="));
    }

    #[test]
    fn length_is_none_when_any_wire_lacks_it() {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let s1 = b.sink(Farads::ZERO, Seconds::ZERO);
        b.connect(src, s1, Wire::new(O::new(1.0), Farads::ZERO))
            .unwrap();
        let stats = b.build().unwrap().stats();
        assert_eq!(stats.total_length, None);
        assert!(!stats.to_string().contains("length="));
    }
}
