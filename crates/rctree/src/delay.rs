//! The delay-model seam: how wires and gates turn loads into delays and
//! output slews.
//!
//! The paper's DP (and the forward evaluator in [`crate::elmore`]) assume
//! the Elmore delay model throughout. Realistic deployments of buffer
//! insertion want two extra degrees of freedom:
//!
//! 1. **a different delay metric** — Elmore is a provable upper bound but
//!    pessimistic on resistively-shielded nets; scaled-Elmore / D2M-style
//!    metrics multiply the wire term by an empirical factor;
//! 2. **an output-slew constraint** — candidates whose stage would exceed a
//!    maximum transition time at any downstream buffer input or sink must
//!    be rejected, whatever their slack.
//!
//! [`DelayModel`] abstracts both. Implementations must keep the **gate**
//! delay linear in load (`K + R·C`): the convex-hull argument of the
//! O(bn²) `AddBuffer` (Lemmas 1–4 of the paper) relies on maximizing the
//! linear functional `Q − R·C`, so only the *wire* term and the slew
//! metric are model-dependent. [`ElmoreModel`] is the default and is
//! bit-identical to the hard-coded arithmetic the solvers used before this
//! seam existed; [`ScaledElmoreModel`] proves the seam with a second
//! backend.
//!
//! # Slew model
//!
//! The output slew at a stage endpoint (the input of the next downstream
//! buffer, or a sink) uses the classic Elmore-based ramp approximation
//! (`ln 9 ≈ 2.2` × the stage Elmore delay for a 10–90% transition):
//!
//! ```text
//! slew(endpoint) = slew₀(driver) + ln9 · ( R_driver·C_stage + D_wire(driver→endpoint) )
//! ```
//!
//! where `slew₀` is the driving gate's intrinsic output slew
//! ([`BufferType::output_slew`](fastbuf_buflib::BufferType::output_slew)),
//! `C_stage` the total capacitance the driver sees, and `D_wire` the
//! in-stage wire delay from the driver's output to the endpoint under this
//! model's [`DelayModel::wire_delay`].

use std::fmt;

/// `ln 9` — the 10–90% ramp factor of the Elmore slew approximation.
pub const LN9: f64 = 2.197224577336219_f64;

/// A delay/slew model for wires and gates.
///
/// Implementations must be cheap to call (these methods run in the DP's
/// innermost loops) and **must keep gate delay linear in load** — see the
/// [module docs](self). All quantities are raw SI `f64`s (ohms, farads,
/// seconds), matching the hot-path convention of `fastbuf-core`.
pub trait DelayModel: fmt::Debug + Send + Sync {
    /// Short stable name (used by the CLI `--model` flag and reports).
    fn name(&self) -> &'static str;

    /// Delay of a wire with resistance `r` and capacitance `cw` driving a
    /// downstream load `load`. The Elmore form is `r·(cw/2 + load)`.
    fn wire_delay(&self, r: f64, cw: f64, load: f64) -> f64;

    /// Batched [`DelayModel::wire_delay`]: clears `out` and fills it with
    /// the delay of the wire `(r, cw)` driving each load of `loads`, in
    /// order.
    ///
    /// The default body calls [`DelayModel::wire_delay`] per element.
    /// Because Rust instantiates default bodies once per implementing type,
    /// the inner call is *static* even when this method is invoked through
    /// `dyn DelayModel` — one virtual dispatch per wire instead of one per
    /// candidate, and a branch-free loop the compiler can vectorize. The
    /// struct-of-arrays kernel of `fastbuf-core` feeds whole capacitance
    /// columns through here; results are bit-identical to the scalar path
    /// by construction.
    fn wire_delays(&self, r: f64, cw: f64, loads: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(loads.len());
        out.extend(loads.iter().map(|&load| self.wire_delay(r, cw, load)));
    }

    /// Fused wire shear over candidate columns: for each index `i`, with
    /// `d = wire_delay(r, cw, c[i])` computed from the *pre-shear*
    /// capacitance, applies `q[i] -= d`, `s[i] += d`, `c[i] += cw`.
    ///
    /// Same monomorphization argument as [`DelayModel::wire_delays`]: the
    /// default body's inner `wire_delay` call is static per implementing
    /// type, so a `dyn DelayModel` pays one virtual dispatch per wire and
    /// the whole shear runs as a single tight loop — one memory pass over
    /// the three lanes instead of a delay-buffer fill plus per-lane
    /// passes. Per element the arithmetic and its order are exactly the
    /// scalar path's, so results are bit-identical by construction.
    ///
    /// All three slices must have the same length. (Keeping the body free
    /// of loop-carried state is deliberate: the per-element updates are
    /// independent, so the loop auto-vectorizes; order restoration is the
    /// caller's separate, rarely-triggered pass.)
    fn wire_shear(&self, r: f64, cw: f64, q: &mut [f64], s: &mut [f64], c: &mut [f64]) {
        debug_assert!(q.len() == c.len() && s.len() == c.len());
        for ((q, s), c) in q.iter_mut().zip(s.iter_mut()).zip(c.iter_mut()) {
            let d = self.wire_delay(r, cw, *c);
            *q -= d;
            *s += d;
            *c += cw;
        }
    }

    /// Delay of a gate (buffer or driver) with intrinsic delay `k` and
    /// output resistance `r` driving `load`: always `k + r·load`.
    ///
    /// Provided (not overridable in spirit): the DP's optimality argument
    /// requires this exact linear form, so the default is final in
    /// practice and exists only so evaluators can call one object.
    fn gate_delay(&self, k: f64, r: f64, load: f64) -> f64 {
        k + r * load
    }

    /// Output slew at a stage endpoint: the stage driver has intrinsic
    /// output slew `slew0` and resistance `r`, drives total stage load
    /// `load`, and the in-stage wire delay from driver output to the
    /// endpoint is `stage_wire_delay` (already computed with this model's
    /// [`DelayModel::wire_delay`]).
    fn slew(&self, slew0: f64, r: f64, load: f64, stage_wire_delay: f64) -> f64 {
        slew0 + LN9 * (r * load + stage_wire_delay)
    }

    /// Inverse of [`DelayModel::slew`] in the quantity `r·load +
    /// stage_wire_delay`: the largest value of that sum for which a stage
    /// driven by a gate with intrinsic output slew `slew0` still meets
    /// `slew_limit`. Overriding [`DelayModel::slew`] requires keeping this
    /// consistent — the DP prunes with the budget, the evaluator measures
    /// with the slew.
    fn stage_budget(&self, slew_limit: f64, slew0: f64) -> f64 {
        (slew_limit - slew0) / LN9
    }

    /// A content fingerprint of this model: two models whose fingerprints
    /// are equal **must** produce identical arithmetic for every input.
    /// Caches (`fastbuf-core`'s `SubtreeCache`) key solve results on it, so
    /// a parametrized model must fold every parameter in — the default
    /// hashes only [`DelayModel::name`] and is correct only for parameterless
    /// models.
    fn fingerprint(&self) -> u64 {
        fingerprint_name(self.name())
    }
}

/// FNV-1a of a model name — the building block for
/// [`DelayModel::fingerprint`] implementations (combine with parameter bits
/// via [`fingerprint_extend`] for parametrized models).
pub fn fingerprint_name(name: &str) -> u64 {
    fnv1a(0xcbf29ce484222325, name.as_bytes())
}

/// Folds the eight little-endian bytes of `value` into an FNV-1a `hash` —
/// the shared primitive behind [`fingerprint_name`] and every content
/// fingerprint in the workspace (e.g. the solve-config fingerprints of
/// `fastbuf-core`'s subtree cache), so the hash constants live in exactly
/// one place.
pub fn fingerprint_extend(hash: u64, value: u64) -> u64 {
    fnv1a(hash, &value.to_le_bytes())
}

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(0x100000001b3);
    }
    hash
}

/// The paper's model: Elmore wire delay `r·(cw/2 + load)`, linear gate
/// delay, `ln 9` ramp slew. The default everywhere; with no slew limit the
/// solvers produce bit-identical results to the pre-seam hard-coded
/// arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElmoreModel;

impl DelayModel for ElmoreModel {
    fn name(&self) -> &'static str {
        "elmore"
    }

    #[inline]
    fn wire_delay(&self, r: f64, cw: f64, load: f64) -> f64 {
        r * (cw / 2.0 + load)
    }
}

/// A scaled-Elmore (D2M-style) backend: the wire term is multiplied by an
/// empirical factor, the gate term stays linear.
///
/// Pure Elmore overestimates wire delay on resistively-shielded paths; the
/// D2M family of two-moment metrics lands near `ln 2 ≈ 0.69` of Elmore for
/// step responses on long uniform lines, which is the default factor here.
/// This backend exists to prove the [`DelayModel`] seam end-to-end — any
/// factor in `(0, 1]` keeps the DP's dominance and hull arguments valid
/// because the wire shear remains monotone in load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaledElmoreModel {
    /// Multiplier applied to every wire delay (gate delays are untouched).
    pub wire_scale: f64,
}

impl ScaledElmoreModel {
    /// The D2M-ish default factor `ln 2`.
    pub const DEFAULT_SCALE: f64 = std::f64::consts::LN_2;

    /// A scaled-Elmore model with an explicit factor.
    ///
    /// # Panics
    ///
    /// Panics if `wire_scale` is not finite and positive.
    pub fn new(wire_scale: f64) -> Self {
        assert!(
            wire_scale.is_finite() && wire_scale > 0.0,
            "wire_scale must be finite and positive, got {wire_scale}"
        );
        ScaledElmoreModel { wire_scale }
    }
}

impl Default for ScaledElmoreModel {
    fn default() -> Self {
        ScaledElmoreModel {
            wire_scale: Self::DEFAULT_SCALE,
        }
    }
}

impl DelayModel for ScaledElmoreModel {
    fn name(&self) -> &'static str {
        "scaled-elmore"
    }

    #[inline]
    fn wire_delay(&self, r: f64, cw: f64, load: f64) -> f64 {
        self.wire_scale * (r * (cw / 2.0 + load))
    }

    /// Folds the wire-scale factor in: two scaled models agree only when
    /// their factors agree bit for bit.
    fn fingerprint(&self) -> u64 {
        fingerprint_extend(fingerprint_name(self.name()), self.wire_scale.to_bits())
    }
}

/// Resolves a model by its [`DelayModel::name`], for CLI flags and config
/// files. Returns `None` for unknown names.
pub fn model_by_name(name: &str) -> Option<std::sync::Arc<dyn DelayModel>> {
    match name {
        "elmore" => Some(std::sync::Arc::new(ElmoreModel)),
        "scaled-elmore" => Some(std::sync::Arc::new(ScaledElmoreModel::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elmore_matches_hardcoded_formulas() {
        let m = ElmoreModel;
        let (r, cw, load) = (123.0, 4.5e-15, 7.5e-15);
        // Bit-identical to the pre-seam arithmetic `r * (cw/2 + load)`.
        assert_eq!(m.wire_delay(r, cw, load).to_bits(), {
            let half = cw / 2.0;
            (r * (half + load)).to_bits()
        });
        assert_eq!(m.gate_delay(1e-12, r, load), 1e-12 + r * load);
    }

    #[test]
    fn scaled_elmore_scales_only_wires() {
        let m = ScaledElmoreModel::new(0.5);
        let e = ElmoreModel;
        assert_eq!(m.wire_delay(100.0, 2e-15, 3e-15), {
            0.5 * e.wire_delay(100.0, 2e-15, 3e-15)
        });
        assert_eq!(
            m.gate_delay(1e-12, 100.0, 3e-15),
            e.gate_delay(1e-12, 100.0, 3e-15)
        );
    }

    #[test]
    fn slew_and_budget_are_inverses() {
        let m = ElmoreModel;
        for limit in [10e-12, 100e-12, 1e-9] {
            for slew0 in [0.0, 5e-12] {
                let x = m.stage_budget(limit, slew0);
                let back = m.slew(slew0, 1.0, x, 0.0); // r·load + wire = x
                assert!((back - limit).abs() < 1e-21, "{back} vs {limit}");
            }
        }
    }

    #[test]
    fn slew_grows_with_every_component() {
        let m = ElmoreModel;
        let base = m.slew(0.0, 100.0, 1e-14, 1e-12);
        assert!(m.slew(1e-12, 100.0, 1e-14, 1e-12) > base);
        assert!(m.slew(0.0, 200.0, 1e-14, 1e-12) > base);
        assert!(m.slew(0.0, 100.0, 2e-14, 1e-12) > base);
        assert!(m.slew(0.0, 100.0, 1e-14, 2e-12) > base);
    }

    #[test]
    fn fingerprints_separate_models_and_parameters() {
        assert_eq!(ElmoreModel.fingerprint(), ElmoreModel.fingerprint());
        assert_ne!(
            ElmoreModel.fingerprint(),
            ScaledElmoreModel::default().fingerprint()
        );
        // Same type, different parameter: different fingerprint — a cache
        // keyed on it must not reuse results across scales.
        assert_ne!(
            ScaledElmoreModel::new(0.5).fingerprint(),
            ScaledElmoreModel::new(0.7).fingerprint()
        );
        assert_eq!(
            ScaledElmoreModel::new(0.5).fingerprint(),
            ScaledElmoreModel::new(0.5).fingerprint()
        );
    }

    #[test]
    fn name_lookup() {
        assert_eq!(model_by_name("elmore").unwrap().name(), "elmore");
        assert_eq!(
            model_by_name("scaled-elmore").unwrap().name(),
            "scaled-elmore"
        );
        assert!(model_by_name("spice").is_none());
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bad_scale_rejected() {
        let _ = ScaledElmoreModel::new(0.0);
    }
}
