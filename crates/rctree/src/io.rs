//! Plain-text net exchange format.
//!
//! The format is line-oriented and independent of any external serialization
//! crate, so nets can be produced by scripts and diffed in code review:
//!
//! ```text
//! # anything after '#' is a comment
//! fastbuf-net v1
//! nodes 4
//! node 0 source 180          # driving resistance [intrinsic delay ps]
//! node 1 internal site       # 'site' = any buffer; 'allow 0 2' = subset
//! node 2 sink 10 500         # cap_ff rat_ps
//! node 3 sink 7.5 430
//! edge 0 1 7.6 11.8 len 100  # parent child r_ohms c_ff [len um]
//! edge 1 2 3.8 5.9
//! edge 1 3 3.8 5.9
//! ```
//!
//! Node ids must be dense (`0..nodes`), each defined exactly once; edges may
//! appear in any order. [`write()`](write()) always produces a file [`parse`] accepts
//! (round-trip tested). One normalization applies: the bitset universe of an
//! `allow` subset becomes `max id + 1` after parsing; membership semantics
//! are unchanged.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
use fastbuf_buflib::{BufferSet, BufferTypeId, Driver};

use crate::node::{NodeId, NodeKind, SiteConstraint, Wire};
use crate::tree::{RoutingTree, TreeBuilder};

/// Error from [`parse`]: the offending 1-based line and a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetParseError {
    /// 1-based line number (0 for file-level problems).
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl NetParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        NetParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for NetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "net parse error: {}", self.message)
        } else {
            write!(f, "net parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for NetParseError {}

/// Pulls the next token from `tok` and parses it as a number.
fn next_num<'a>(
    tok: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<f64, NetParseError> {
    tok.next()
        .ok_or_else(|| NetParseError::new(lineno, format!("missing {what}")))?
        .parse::<f64>()
        .map_err(|e| NetParseError::new(lineno, format!("bad {what}: {e}")))
}

/// Serializes a tree to the text format.
pub fn write(tree: &RoutingTree) -> String {
    let mut out = String::new();
    out.push_str("fastbuf-net v1\n");
    out.push_str(&format!("nodes {}\n", tree.node_count()));
    for node in tree.node_ids() {
        match tree.kind(node) {
            NodeKind::Source { driver } => {
                if driver.intrinsic_delay() == Seconds::ZERO {
                    out.push_str(&format!(
                        "node {} source {}\n",
                        node.index(),
                        driver.resistance().value()
                    ));
                } else {
                    out.push_str(&format!(
                        "node {} source {} {}\n",
                        node.index(),
                        driver.resistance().value(),
                        driver.intrinsic_delay().picos()
                    ));
                }
            }
            NodeKind::Sink {
                capacitance,
                required_arrival,
            } => {
                out.push_str(&format!(
                    "node {} sink {} {}\n",
                    node.index(),
                    capacitance.femtos(),
                    required_arrival.picos()
                ));
            }
            NodeKind::Internal => match tree.site_constraint(node) {
                SiteConstraint::NotASite => {
                    out.push_str(&format!("node {} internal\n", node.index()));
                }
                SiteConstraint::AnyBuffer => {
                    out.push_str(&format!("node {} internal site\n", node.index()));
                }
                SiteConstraint::Subset(set) => {
                    out.push_str(&format!("node {} internal allow", node.index()));
                    for id in set.iter() {
                        out.push_str(&format!(" {}", id.index()));
                    }
                    out.push('\n');
                }
            },
        }
    }
    for node in tree.node_ids() {
        if let (Some(parent), Some(wire)) = (tree.parent(node), tree.wire_to_parent(node)) {
            out.push_str(&format!(
                "edge {} {} {} {}",
                parent.index(),
                node.index(),
                wire.resistance().value(),
                wire.capacitance().femtos()
            ));
            if let Some(l) = wire.length() {
                out.push_str(&format!(" len {}", l.value()));
            }
            out.push('\n');
        }
    }
    out
}

/// Parses the text format into a validated [`RoutingTree`].
///
/// # Errors
///
/// [`NetParseError`] describing the first offending line; structural
/// problems detected by [`TreeBuilder::build`] are reported on line 0.
pub fn parse(text: &str) -> Result<RoutingTree, NetParseError> {
    enum Decl {
        Source(Driver),
        Sink(Farads, Seconds),
        Internal(SiteConstraint),
    }

    let mut node_count: Option<usize> = None;
    let mut decls: Vec<Option<(usize, Decl)>> = Vec::new(); // (line, decl)
    let mut edges: Vec<(usize, usize, usize, Wire)> = Vec::new(); // (line, parent, child)
    let mut saw_header = false;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        let head = tok.next().expect("non-empty line has a token");
        match head {
            "fastbuf-net" => {
                saw_header = true;
            }
            "nodes" => {
                let n = next_num(&mut tok, lineno, "node count")? as usize;
                node_count = Some(n);
                decls = (0..n).map(|_| None).collect();
            }
            "node" => {
                let n = node_count
                    .ok_or_else(|| NetParseError::new(lineno, "`nodes` must precede `node`"))?;
                let id = next_num(&mut tok, lineno, "node id")? as usize;
                if id >= n {
                    return Err(NetParseError::new(
                        lineno,
                        format!("node id {id} out of range (nodes {n})"),
                    ));
                }
                if decls[id].is_some() {
                    return Err(NetParseError::new(lineno, format!("node {id} redefined")));
                }
                let kind = tok
                    .next()
                    .ok_or_else(|| NetParseError::new(lineno, "missing node kind"))?;
                let decl = match kind {
                    "source" => {
                        let r = tok
                            .next()
                            .ok_or_else(|| NetParseError::new(lineno, "missing resistance"))?
                            .parse::<f64>()
                            .map_err(|e| {
                                NetParseError::new(lineno, format!("bad resistance: {e}"))
                            })?;
                        let mut driver = Driver::new(Ohms::new(r));
                        if let Some(k) = tok.next() {
                            let k: f64 = k.parse().map_err(|e| {
                                NetParseError::new(lineno, format!("bad intrinsic delay: {e}"))
                            })?;
                            driver = driver.with_intrinsic_delay(Seconds::from_pico(k));
                        }
                        Decl::Source(driver)
                    }
                    "sink" => {
                        let c = tok
                            .next()
                            .ok_or_else(|| NetParseError::new(lineno, "missing capacitance"))?
                            .parse::<f64>()
                            .map_err(|e| {
                                NetParseError::new(lineno, format!("bad capacitance: {e}"))
                            })?;
                        let rat = tok
                            .next()
                            .ok_or_else(|| NetParseError::new(lineno, "missing rat"))?
                            .parse::<f64>()
                            .map_err(|e| NetParseError::new(lineno, format!("bad rat: {e}")))?;
                        Decl::Sink(Farads::from_femto(c), Seconds::from_pico(rat))
                    }
                    "internal" => match tok.next() {
                        None => Decl::Internal(SiteConstraint::NotASite),
                        Some("site") => Decl::Internal(SiteConstraint::AnyBuffer),
                        Some("allow") => {
                            let mut ids = Vec::new();
                            for t in tok.by_ref() {
                                let v: usize = t.parse().map_err(|e| {
                                    NetParseError::new(lineno, format!("bad buffer id: {e}"))
                                })?;
                                ids.push(BufferTypeId::new(v));
                            }
                            let set: BufferSet = ids.into_iter().collect();
                            Decl::Internal(SiteConstraint::Subset(Arc::new(set)))
                        }
                        Some(other) => {
                            return Err(NetParseError::new(
                                lineno,
                                format!("unknown internal qualifier `{other}`"),
                            ));
                        }
                    },
                    other => {
                        return Err(NetParseError::new(
                            lineno,
                            format!("unknown node kind `{other}`"),
                        ));
                    }
                };
                decls[id] = Some((lineno, decl));
            }
            "edge" => {
                let parent = next_num(&mut tok, lineno, "parent id")? as usize;
                let child = next_num(&mut tok, lineno, "child id")? as usize;
                let r = next_num(&mut tok, lineno, "wire resistance")?;
                let c = next_num(&mut tok, lineno, "wire capacitance")?;
                let mut wire = Wire::new(Ohms::new(r), Farads::from_femto(c));
                match tok.next() {
                    None => {}
                    Some("len") => {
                        let l = next_num(&mut tok, lineno, "length")?;
                        // Preserve the geometric length without changing the
                        // explicit parasitics: rebuild via split of a synthetic
                        // one-piece technology-free wire.
                        wire = Wire::from_parts(
                            Ohms::new(r),
                            Farads::from_femto(c),
                            Some(Microns::new(l)),
                        );
                    }
                    Some(other) => {
                        return Err(NetParseError::new(
                            lineno,
                            format!("unexpected token `{other}` on edge"),
                        ));
                    }
                }
                edges.push((lineno, parent, child, wire));
            }
            other => {
                return Err(NetParseError::new(
                    lineno,
                    format!("unknown directive `{other}`"),
                ));
            }
        }
    }

    if !saw_header {
        return Err(NetParseError::new(0, "missing `fastbuf-net v1` header"));
    }
    let n = node_count.ok_or_else(|| NetParseError::new(0, "missing `nodes` directive"))?;
    let mut b = TreeBuilder::new();
    for (id, d) in decls.iter().enumerate() {
        match d {
            None => {
                return Err(NetParseError::new(0, format!("node {id} never defined")));
            }
            Some((_, Decl::Source(driver))) => {
                b.source(*driver);
            }
            Some((_, Decl::Sink(c, rat))) => {
                b.sink(*c, *rat);
            }
            Some((_, Decl::Internal(con))) => {
                b.internal_with(con.clone());
            }
        }
    }
    for (lineno, parent, child, wire) in edges {
        if parent >= n || child >= n {
            return Err(NetParseError::new(lineno, "edge endpoint out of range"));
        }
        b.connect(NodeId::new(parent), NodeId::new(child), wire)
            .map_err(|e| NetParseError::new(lineno, e.to_string()))?;
    }
    b.build().map_err(|e| NetParseError::new(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::Technology;

    fn sample() -> RoutingTree {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src =
            b.source(Driver::new(Ohms::new(180.0)).with_intrinsic_delay(Seconds::from_pico(3.0)));
        let tee = b.internal();
        let site = b.buffer_site();
        let mut allowed = BufferSet::empty(4);
        allowed.insert(BufferTypeId::new(0));
        allowed.insert(BufferTypeId::new(2));
        let limited = b.internal_with(SiteConstraint::Subset(Arc::new(allowed)));
        let s1 = b.sink(Farads::from_femto(10.0), Seconds::from_pico(500.0));
        let s2 = b.sink(Farads::from_femto(7.5), Seconds::from_pico(430.0));
        b.connect(src, tee, Wire::from_length(&tech, Microns::new(100.0)))
            .unwrap();
        b.connect(
            tee,
            site,
            Wire::new(Ohms::new(3.8), Farads::from_femto(5.9)),
        )
        .unwrap();
        b.connect(site, s1, Wire::new(Ohms::new(1.0), Farads::from_femto(2.0)))
            .unwrap();
        b.connect(
            tee,
            limited,
            Wire::new(Ohms::new(2.0), Farads::from_femto(3.0)),
        )
        .unwrap();
        b.connect(
            limited,
            s2,
            Wire::new(Ohms::new(1.5), Farads::from_femto(2.5)),
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let text = write(&t);
        let back = parse(&text).unwrap();
        assert_eq!(back.node_count(), t.node_count());
        assert_eq!(back.sink_count(), t.sink_count());
        assert_eq!(back.buffer_site_count(), t.buffer_site_count());
        for n in t.node_ids() {
            // Unit conversion (F -> fF -> F) may cost one ULP; compare
            // numerically rather than bitwise.
            match (back.kind(n), t.kind(n)) {
                (
                    NodeKind::Sink {
                        capacitance: c1,
                        required_arrival: r1,
                    },
                    NodeKind::Sink {
                        capacitance: c2,
                        required_arrival: r2,
                    },
                ) => {
                    assert!((c1.femtos() - c2.femtos()).abs() < 1e-9, "cap of {n}");
                    assert!((r1.picos() - r2.picos()).abs() < 1e-9, "rat of {n}");
                }
                (a, b) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "kind of {n}"
                ),
            }
            // Subset universes are normalized to max id + 1 by parsing, so
            // compare membership, not representation.
            for b in 0..8 {
                let id = BufferTypeId::new(b);
                assert_eq!(
                    back.site_constraint(n).allows(id),
                    t.site_constraint(n).allows(id),
                    "site of {n} buffer {b}"
                );
            }
            assert_eq!(back.parent(n), t.parent(n), "parent of {n}");
            match (back.wire_to_parent(n), t.wire_to_parent(n)) {
                (Some(a), Some(b)) => {
                    assert!((a.resistance().value() - b.resistance().value()).abs() < 1e-9);
                    assert!((a.capacitance().femtos() - b.capacitance().femtos()).abs() < 1e-9);
                    match (a.length(), b.length()) {
                        (Some(x), Some(y)) => assert!((x.value() - y.value()).abs() < 1e-9),
                        (None, None) => {}
                        other => panic!("length mismatch at {n}: {other:?}"),
                    }
                }
                (None, None) => {}
                other => panic!("wire mismatch at {n}: {other:?}"),
            }
        }
        // Driver intrinsic delay survives.
        assert!((back.driver().intrinsic_delay().picos() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\nfastbuf-net v1\nnodes 2 # trailing\nnode 0 source 100\nnode 1 sink 1 10\nedge 0 1 1 1\n\n";
        let t = parse(text).unwrap();
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let missing_header = "nodes 1\nnode 0 source 1\n";
        assert_eq!(parse(missing_header).unwrap_err().line, 0);

        let bad = "fastbuf-net v1\nnodes 2\nnode 0 source 100\nnode 1 sink x 10\nedge 0 1 1 1\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("bad capacitance"));

        let oob = "fastbuf-net v1\nnodes 1\nnode 0 source 100\nedge 0 5 1 1\n";
        let e = parse(oob).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("out of range"));

        let redef = "fastbuf-net v1\nnodes 2\nnode 0 source 1\nnode 0 source 1\n";
        assert!(parse(redef).unwrap_err().message.contains("redefined"));

        let unknown = "fastbuf-net v1\nnodes 1\nnode 0 widget 1\n";
        assert!(parse(unknown)
            .unwrap_err()
            .message
            .contains("unknown node kind"));

        let undef = "fastbuf-net v1\nnodes 2\nnode 0 source 1\n";
        assert!(parse(undef).unwrap_err().message.contains("never defined"));
    }

    #[test]
    fn structural_errors_surface_from_build() {
        // Two roots: node 1 unreachable.
        let text = "fastbuf-net v1\nnodes 2\nnode 0 source 1\nnode 1 sink 1 1\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("not reachable"), "{e}");
    }

    #[test]
    fn display_formats() {
        let e = NetParseError::new(3, "boom");
        assert_eq!(e.to_string(), "net parse error at line 3: boom");
        let e = NetParseError::new(0, "boom");
        assert_eq!(e.to_string(), "net parse error: boom");
    }
}
