//! Error types for tree construction and evaluation.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Errors produced when building, transforming, or evaluating a
/// [`RoutingTree`](crate::RoutingTree).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// The tree has no source node.
    NoSource,
    /// More than one source node was created.
    MultipleSources {
        /// The second source encountered.
        second: NodeId,
    },
    /// A node id does not exist in this builder/tree.
    UnknownNode {
        /// The offending id.
        node: NodeId,
    },
    /// `connect` was called with identical parent and child.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// A node was connected to two parents (or to the same parent twice).
    DuplicateParent {
        /// The node that already had a parent.
        node: NodeId,
    },
    /// The source node was connected as a child.
    SourceHasParent,
    /// The tree has no sinks; a net must drive at least one load.
    NoSinks,
    /// A node is not reachable from the source.
    Unreachable {
        /// The unreachable node.
        node: NodeId,
    },
    /// An internal node has no children; leaves must be sinks.
    InternalLeaf {
        /// The childless internal node.
        node: NodeId,
    },
    /// A sink node has children; sinks must be leaves.
    SinkWithChildren {
        /// The offending sink.
        node: NodeId,
    },
    /// A wire has negative or non-finite parasitics.
    InvalidWire {
        /// The child endpoint of the wire.
        child: NodeId,
    },
    /// A sink has a negative/non-finite capacitance or non-finite RAT.
    InvalidSink {
        /// The offending sink.
        node: NodeId,
    },
    /// A buffer-site constraint was placed on a non-internal node.
    SiteOnNonInternal {
        /// The offending node.
        node: NodeId,
    },
    /// A sink-parameter edit targeted a node that is not a sink.
    NotASink {
        /// The offending node.
        node: NodeId,
    },
    /// A wire edit targeted the root, which has no parent wire.
    NoParentWire {
        /// The offending node (the root).
        node: NodeId,
    },
    /// Segmenting by length was requested but a wire has no length.
    MissingWireLength {
        /// The child endpoint of the length-less wire.
        child: NodeId,
    },
    /// A buffer in an assignment sits on a node that is not a buffer site,
    /// or uses a type the site does not allow.
    IllegalAssignment {
        /// The offending node.
        node: NodeId,
    },
    /// A site-variation edit carried non-finite or non-positive scale
    /// factors.
    InvalidVariation {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NoSource => write!(f, "tree has no source node"),
            TreeError::MultipleSources { second } => {
                write!(f, "tree has more than one source (second is {second})")
            }
            TreeError::UnknownNode { node } => write!(f, "unknown node {node}"),
            TreeError::SelfLoop { node } => write!(f, "self loop at {node}"),
            TreeError::DuplicateParent { node } => {
                write!(f, "node {node} was connected to two parents")
            }
            TreeError::SourceHasParent => write!(f, "source node cannot have a parent"),
            TreeError::NoSinks => write!(f, "tree has no sinks"),
            TreeError::Unreachable { node } => {
                write!(f, "node {node} is not reachable from the source")
            }
            TreeError::InternalLeaf { node } => {
                write!(
                    f,
                    "internal node {node} has no children; leaves must be sinks"
                )
            }
            TreeError::SinkWithChildren { node } => {
                write!(f, "sink {node} has children; sinks must be leaves")
            }
            TreeError::InvalidWire { child } => {
                write!(f, "wire into {child} has negative or non-finite parasitics")
            }
            TreeError::InvalidSink { node } => {
                write!(
                    f,
                    "sink {node} has invalid capacitance or required arrival time"
                )
            }
            TreeError::SiteOnNonInternal { node } => {
                write!(f, "buffer-site constraint on non-internal node {node}")
            }
            TreeError::NotASink { node } => {
                write!(f, "node {node} is not a sink")
            }
            TreeError::NoParentWire { node } => {
                write!(f, "node {node} is the root and has no parent wire")
            }
            TreeError::MissingWireLength { child } => {
                write!(f, "wire into {child} has no geometric length")
            }
            TreeError::IllegalAssignment { node } => {
                write!(
                    f,
                    "buffer assignment at {node} violates the site constraint"
                )
            }
            TreeError::InvalidVariation { node } => {
                write!(
                    f,
                    "site variation at {node} has non-finite or non-positive scales"
                )
            }
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_node() {
        let e = TreeError::Unreachable {
            node: NodeId::new(3),
        };
        assert!(e.to_string().contains("n3"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TreeError>();
    }
}
