//! Wire segmenting: inserting candidate buffer positions along wires.
//!
//! Van Ginneken-family algorithms can only place buffers at the tree's
//! internal vertices, so the achievable slack — and the problem size `n` —
//! depends on how finely wires are divided. Alpert & Devgan ("Wire
//! segmenting for improved buffer insertion", DAC 1997, reference \[1\] of
//! the paper) showed that slicing wires into short segments approaches the
//! continuous optimum. The paper's Figure 4 sweeps `n` from 1943 to ~66000
//! positions on a fixed 1944-sink net exactly this way; use
//! [`segment_uniform`] (fixed piece count per wire) or [`segment_by_pitch`]
//! (geometric pitch) to reproduce that sweep.
//!
//! Segmenting preserves total wire parasitics: a wire of `(R, C)` split into
//! `k` pieces becomes `k` wires of `(R/k, C/k)` joined by new internal nodes
//! marked as buffer positions.

use fastbuf_buflib::units::Microns;

use crate::error::TreeError;
use crate::node::NodeKind;
use crate::tree::{RoutingTree, TreeBuilder};

/// Outcome of a segmenting transformation.
#[derive(Debug)]
pub struct SegmentResult {
    /// The segmented tree. Original nodes keep their ids; the new buffer
    /// sites are appended after them.
    pub tree: RoutingTree,
    /// Number of buffer sites added.
    pub added_sites: usize,
}

/// Splits **every** wire into `pieces` equal segments, inserting
/// `pieces − 1` new buffer positions per wire.
///
/// # Errors
///
/// Propagates [`TreeError`] from rebuilding (cannot occur for a valid input
/// tree).
///
/// # Panics
///
/// Panics if `pieces == 0`.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::{Driver, Technology};
/// use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
/// use fastbuf_rctree::{TreeBuilder, Wire};
/// use fastbuf_rctree::segment::segment_uniform;
///
/// let tech = Technology::tsmc180_like();
/// let mut b = TreeBuilder::new();
/// let src = b.source(Driver::new(Ohms::new(100.0)));
/// let snk = b.sink(Farads::from_femto(5.0), Seconds::from_pico(100.0));
/// b.connect(src, snk, Wire::from_length(&tech, Microns::new(1000.0)))?;
/// let tree = b.build()?;
///
/// let seg = segment_uniform(&tree, 4)?;
/// assert_eq!(seg.added_sites, 3);
/// assert_eq!(seg.tree.buffer_site_count(), 3);
/// // Total parasitics are preserved.
/// assert!((seg.tree.stats().total_wire_resistance.value()
///          - tree.stats().total_wire_resistance.value()).abs() < 1e-9);
/// # Ok::<(), fastbuf_rctree::TreeError>(())
/// ```
pub fn segment_uniform(tree: &RoutingTree, pieces: usize) -> Result<SegmentResult, TreeError> {
    assert!(pieces > 0, "pieces must be at least 1");
    rebuild(tree, |_| pieces)
}

/// Splits each wire into `ceil(length / pitch)` equal segments (minimum 1),
/// so that no segment is longer than `pitch`.
///
/// # Errors
///
/// [`TreeError::MissingWireLength`] if any wire lacks a geometric length.
///
/// # Panics
///
/// Panics if `pitch` is not strictly positive.
pub fn segment_by_pitch(tree: &RoutingTree, pitch: Microns) -> Result<SegmentResult, TreeError> {
    assert!(
        pitch > Microns::ZERO,
        "segmenting pitch must be strictly positive"
    );
    // Validate lengths up front so the closure below cannot fail silently.
    for node in tree.node_ids() {
        if let Some(w) = tree.wire_to_parent(node) {
            if w.length().is_none() {
                return Err(TreeError::MissingWireLength { child: node });
            }
        }
    }
    rebuild(tree, |len| {
        let l = len.expect("validated above");
        ((l / pitch).ceil() as usize).max(1)
    })
}

/// Rebuilds `tree` splitting the wire above node `v` into
/// `pieces_for(wire.length())` segments.
fn rebuild(
    tree: &RoutingTree,
    pieces_for: impl Fn(Option<Microns>) -> usize,
) -> Result<SegmentResult, TreeError> {
    let mut b = TreeBuilder::new();
    // Recreate original nodes in id order so they keep their ids.
    for node in tree.node_ids() {
        match tree.kind(node) {
            NodeKind::Source { driver } => {
                b.source(*driver);
            }
            NodeKind::Sink {
                capacitance,
                required_arrival,
            } => {
                b.sink(*capacitance, *required_arrival);
            }
            NodeKind::Internal => {
                b.internal_with(tree.site_constraint(node).clone());
            }
        }
    }
    let mut added_sites = 0usize;
    for node in tree.node_ids() {
        let Some(parent) = tree.parent(node) else {
            continue;
        };
        let wire = *tree.wire_to_parent(node).expect("non-root has a wire");
        let pieces = pieces_for(wire.length()).max(1);
        let seg = wire.split(pieces);
        let mut upstream = parent;
        for _ in 1..pieces {
            let site = b.buffer_site();
            added_sites += 1;
            b.connect(upstream, site, seg)?;
            upstream = site;
        }
        b.connect(upstream, node, seg)?;
    }
    Ok(SegmentResult {
        tree: b.build()?,
        added_sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeId, Wire};
    use fastbuf_buflib::units::{Farads, Ohms, Seconds};
    use fastbuf_buflib::{Driver, Technology};

    fn line(length_um: f64) -> RoutingTree {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(100.0)));
        let snk = b.sink(Farads::from_femto(5.0), Seconds::from_pico(100.0));
        b.connect(src, snk, Wire::from_length(&tech, Microns::new(length_um)))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn uniform_preserves_totals_and_adds_sites() {
        let t = line(1000.0);
        let before = t.stats();
        for pieces in [1usize, 2, 7, 16] {
            let seg = segment_uniform(&t, pieces).unwrap();
            let after = seg.tree.stats();
            assert_eq!(seg.added_sites, pieces - 1);
            assert_eq!(after.buffer_sites, pieces - 1);
            assert_eq!(after.nodes, before.nodes + pieces - 1);
            assert!(
                (after.total_wire_resistance.value() - before.total_wire_resistance.value()).abs()
                    < 1e-9
            );
            assert!(
                (after.total_wire_capacitance.femtos() - before.total_wire_capacitance.femtos())
                    .abs()
                    < 1e-9
            );
            assert!(
                (after.total_length.unwrap().value() - before.total_length.unwrap().value()).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn original_ids_are_stable() {
        let t = line(500.0);
        let seg = segment_uniform(&t, 5).unwrap();
        assert!(seg.tree.kind(NodeId::new(0)).is_source());
        assert!(seg.tree.kind(NodeId::new(1)).is_sink());
        for i in 2..seg.tree.node_count() {
            assert!(seg.tree.is_buffer_site(NodeId::new(i)));
        }
    }

    #[test]
    fn pitch_respects_max_segment_length() {
        let t = line(1050.0);
        let seg = segment_by_pitch(&t, Microns::new(100.0)).unwrap();
        // ceil(1050/100) = 11 pieces -> 10 new sites.
        assert_eq!(seg.added_sites, 10);
        for n in seg.tree.node_ids() {
            if let Some(w) = seg.tree.wire_to_parent(n) {
                assert!(w.length().unwrap() <= Microns::new(100.0 + 1e-9));
            }
        }
    }

    #[test]
    fn pitch_larger_than_wire_is_identity() {
        let t = line(80.0);
        let seg = segment_by_pitch(&t, Microns::new(100.0)).unwrap();
        assert_eq!(seg.added_sites, 0);
        assert_eq!(seg.tree.node_count(), t.node_count());
    }

    #[test]
    fn pitch_requires_lengths() {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let snk = b.sink(Farads::ZERO, Seconds::ZERO);
        b.connect(
            src,
            snk,
            Wire::new(Ohms::new(10.0), Farads::from_femto(1.0)),
        )
        .unwrap();
        let t = b.build().unwrap();
        assert_eq!(
            segment_by_pitch(&t, Microns::new(10.0)).unwrap_err(),
            TreeError::MissingWireLength { child: snk }
        );
    }

    #[test]
    fn multi_branch_segmenting() {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let tee = b.internal();
        let s1 = b.sink(Farads::from_femto(1.0), Seconds::ZERO);
        let s2 = b.sink(Farads::from_femto(1.0), Seconds::ZERO);
        b.connect(src, tee, Wire::from_length(&tech, Microns::new(300.0)))
            .unwrap();
        b.connect(tee, s1, Wire::from_length(&tech, Microns::new(100.0)))
            .unwrap();
        b.connect(tee, s2, Wire::from_length(&tech, Microns::new(200.0)))
            .unwrap();
        let t = b.build().unwrap();
        let seg = segment_by_pitch(&t, Microns::new(100.0)).unwrap();
        // 300 -> 3 pieces (2 sites), 100 -> 1 piece, 200 -> 2 pieces (1 site).
        assert_eq!(seg.added_sites, 3);
        // Tee keeps its non-site status.
        assert!(!seg.tree.is_buffer_site(tee));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_pieces_panics() {
        let t = line(10.0);
        let _ = segment_uniform(&t, 0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_pitch_panics() {
        let t = line(10.0);
        let _ = segment_by_pitch(&t, Microns::ZERO);
    }
}
