//! Forward Elmore-delay evaluation of a routing tree under a *fixed* buffer
//! assignment.
//!
//! This module answers: *given these buffer placements, what is the slack?*
//! It is intentionally implemented as a plain forward timing analysis —
//! a bottom-up load pass followed by a top-down arrival pass — with no
//! candidate lists, pruning, or dynamic programming, so it serves as an
//! independent oracle for the DP solvers in `fastbuf-core`: the slack a
//! solver *predicts* must equal the slack this module *measures* for the
//! reconstructed placements.
//!
//! Delay model (identical to the paper's §2):
//!
//! * wire `e` driving downstream load `C`: `D(e) = R(e)·(C(e)/2 + C)`;
//! * buffer `B` driving downstream load `C`: `d = K(B) + R(B)·C`, and the
//!   capacitance seen upstream of the buffer becomes its input capacitance;
//! * driver at the source: `K_d + R_d · C_root`.

use fastbuf_buflib::units::{Farads, Seconds};
use fastbuf_buflib::{BufferLibrary, BufferTypeId};

use crate::delay::{DelayModel, ElmoreModel};
use crate::error::TreeError;
use crate::node::{NodeId, NodeKind};
use crate::tree::RoutingTree;

/// Result of evaluating a buffer assignment.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// The net slack: `min over sinks (RAT − arrival)`.
    pub slack: Seconds,
    /// The sink attaining the minimum slack.
    pub critical_sink: NodeId,
    /// Slack of every sink, in tree index order.
    pub sink_slacks: Vec<(NodeId, Seconds)>,
    /// Number of buffers in the assignment.
    pub buffer_count: usize,
    /// Total cost of the assignment (sum of buffer costs).
    pub total_cost: f64,
    /// Capacitive load presented to the source driver.
    pub root_load: Farads,
    /// Worst forward-propagated output slew over every stage endpoint
    /// (buffer inputs and sinks) — see [`crate::delay`] for the slew model.
    pub max_slew: Seconds,
    /// The endpoint attaining [`EvalReport::max_slew`].
    pub worst_slew_node: NodeId,
}

/// Evaluates `placements` (pairs of node and buffer type) on `tree`.
///
/// # Errors
///
/// [`TreeError::UnknownNode`] if a placement names a node outside the tree;
/// [`TreeError::IllegalAssignment`] if a placement sits on a non-site node,
/// uses a buffer type the site constraint forbids, or repeats a node.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::{BufferLibrary, Driver, Technology};
/// use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
/// use fastbuf_rctree::{TreeBuilder, Wire};
/// use fastbuf_rctree::elmore::evaluate;
///
/// let tech = Technology::tsmc180_like();
/// let lib = BufferLibrary::paper_synthetic(4)?;
/// let mut b = TreeBuilder::new();
/// let src = b.source(Driver::new(Ohms::new(200.0)));
/// let mid = b.buffer_site();
/// let snk = b.sink(Farads::from_femto(10.0), Seconds::from_pico(800.0));
/// b.connect(src, mid, Wire::from_length(&tech, Microns::new(5000.0)))?;
/// b.connect(mid, snk, Wire::from_length(&tech, Microns::new(5000.0)))?;
/// let tree = b.build()?;
///
/// let unbuffered = evaluate(&tree, &lib, &[])?;
/// let buffered = evaluate(&tree, &lib, &[(mid, lib.by_resistance_desc()[3])])?;
/// assert!(buffered.slack > unbuffered.slack, "buffering a long 2-pin wire helps");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(
    tree: &RoutingTree,
    library: &BufferLibrary,
    placements: &[(NodeId, BufferTypeId)],
) -> Result<EvalReport, TreeError> {
    evaluate_with(tree, library, placements, &ElmoreModel)
}

/// [`evaluate`] under an arbitrary [`DelayModel`].
///
/// With [`ElmoreModel`] this is bit-identical to [`evaluate`] (the default
/// model reproduces the hard-coded Elmore arithmetic exactly). The report
/// additionally carries the worst forward-propagated output slew, computed
/// stage by stage: a stage starts at the source driver or at a buffer
/// output and ends at the next buffer inputs / sinks downstream.
///
/// # Errors
///
/// Same as [`evaluate`].
pub fn evaluate_with(
    tree: &RoutingTree,
    library: &BufferLibrary,
    placements: &[(NodeId, BufferTypeId)],
    model: &dyn DelayModel,
) -> Result<EvalReport, TreeError> {
    let n = tree.node_count();
    let mut assigned: Vec<Option<BufferTypeId>> = vec![None; n];
    let mut total_cost = 0.0;
    for &(node, buf) in placements {
        if node.index() >= n {
            return Err(TreeError::UnknownNode { node });
        }
        if !tree.site_constraint(node).allows(buf) || assigned[node.index()].is_some() {
            return Err(TreeError::IllegalAssignment { node });
        }
        assigned[node.index()] = Some(buf);
        total_cost += library.get(buf).cost();
    }

    // Pass 1 (post-order): stage-local load at each node, and the load each
    // node presents to its parent ("visible": the buffer input cap if the
    // node is buffered).
    let mut load = vec![Farads::ZERO; n];
    let mut visible = vec![Farads::ZERO; n];
    for &node in tree.postorder() {
        let i = node.index();
        load[i] = match tree.kind(node) {
            NodeKind::Sink { capacitance, .. } => *capacitance,
            _ => tree
                .children(node)
                .iter()
                .map(|&c| {
                    tree.wire_to_parent(c)
                        .expect("child has a wire")
                        .capacitance()
                        + visible[c.index()]
                })
                .sum(),
        };
        visible[i] = match assigned[i] {
            Some(buf) => library.get(buf).input_capacitance(),
            None => load[i],
        };
    }

    // Pass 2 (top-down, parents before children): arrival time at each
    // node's *output* (after its buffer, if any), plus per-stage slew
    // bookkeeping. A stage is rooted at the source or at a buffered node;
    // `stage_delay` is the in-stage wire delay from the stage driver's
    // output to this node's input, `stage_root` the driving node.
    let mut arrival = vec![Seconds::ZERO; n];
    let mut stage_delay = vec![0.0f64; n];
    let mut stage_root = vec![tree.root(); n];
    let mut max_slew = f64::NEG_INFINITY;
    let mut worst_slew_node = tree.root();
    for &node in tree.postorder().iter().rev() {
        let i = node.index();
        let at_input = match tree.parent(node) {
            None => {
                let d = tree.driver();
                Seconds::new(model.gate_delay(
                    d.intrinsic_delay().value(),
                    d.resistance().value(),
                    load[i].value(),
                ))
            }
            Some(p) => {
                let w = tree.wire_to_parent(node).expect("non-root has a wire");
                let wd = model.wire_delay(
                    w.resistance().value(),
                    w.capacitance().value(),
                    visible[i].value(),
                );
                let pi = p.index();
                if assigned[pi].is_some() {
                    stage_delay[i] = wd;
                    stage_root[i] = p;
                } else {
                    stage_delay[i] = stage_delay[pi] + wd;
                    stage_root[i] = stage_root[pi];
                }
                arrival[pi] + Seconds::new(wd)
            }
        };
        // Stage endpoints are buffer inputs and sinks: measure the slew
        // the stage driver produces there.
        if assigned[i].is_some() || tree.kind(node).is_sink() {
            let root = stage_root[i];
            let (slew0, r) = match assigned[root.index()] {
                Some(buf) => {
                    let b = library.get(buf);
                    // The stage driver's resistance is derated by its
                    // node's local variation (nominal ×1.0 is bit-exact).
                    let drive = tree.site_variation(root).drive_scale();
                    (
                        b.output_slew().value(),
                        b.driving_resistance().value() * drive,
                    )
                }
                None => (0.0, tree.driver().resistance().value()),
            };
            let slew = model.slew(slew0, r, load[root.index()].value(), stage_delay[i]);
            if slew > max_slew {
                max_slew = slew;
                worst_slew_node = node;
            }
        }
        arrival[i] = match assigned[i] {
            Some(buf) => {
                let b = library.get(buf);
                // Local process variation derates this buffer's intrinsic
                // delay and drive — the forward mirror of the DP's derated
                // `AddBuffer` (nominal ×1.0 is bit-exact).
                let v = tree.site_variation(node);
                at_input
                    + Seconds::new(model.gate_delay(
                        b.intrinsic_delay().value() * v.delay_scale(),
                        b.driving_resistance().value() * v.drive_scale(),
                        load[i].value(),
                    ))
            }
            None => at_input,
        };
    }

    let mut sink_slacks = Vec::with_capacity(tree.sink_count());
    let mut slack = Seconds::new(f64::INFINITY);
    let mut critical_sink = tree.root();
    for s in tree.sinks() {
        let rat = match tree.kind(s) {
            NodeKind::Sink {
                required_arrival, ..
            } => *required_arrival,
            _ => unreachable!(),
        };
        let sl = rat - arrival[s.index()];
        sink_slacks.push((s, sl));
        if sl < slack {
            slack = sl;
            critical_sink = s;
        }
    }

    Ok(EvalReport {
        slack,
        critical_sink,
        sink_slacks,
        buffer_count: placements.len(),
        total_cost,
        root_load: load[tree.root().index()],
        max_slew: Seconds::new(max_slew),
        worst_slew_node,
    })
}

/// Total *unbuffered* downstream capacitance below each node (wire + sink
/// capacitance of the whole subtree). Useful for diagnostics and for
/// choosing segmenting pitches.
pub fn downstream_capacitance(tree: &RoutingTree) -> Vec<Farads> {
    let mut down = vec![Farads::ZERO; tree.node_count()];
    for &node in tree.postorder() {
        let i = node.index();
        down[i] = match tree.kind(node) {
            NodeKind::Sink { capacitance, .. } => *capacitance,
            _ => tree
                .children(node)
                .iter()
                .map(|&c| {
                    tree.wire_to_parent(c)
                        .expect("child has a wire")
                        .capacitance()
                        + down[c.index()]
                })
                .sum(),
        };
    }
    down
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Wire;
    use crate::tree::TreeBuilder;
    use fastbuf_buflib::units::{Microns, Ohms};
    use fastbuf_buflib::{BufferType, Driver, Technology};

    fn lib1() -> BufferLibrary {
        BufferLibrary::new(vec![BufferType::new(
            "b",
            Ohms::new(100.0),
            Farads::from_femto(5.0),
            Seconds::from_pico(20.0),
        )])
        .unwrap()
    }

    /// Driver(200Ω) -- wire(100Ω, 10fF) --> sink(5fF, RAT 100ps).
    #[test]
    fn two_pin_hand_computed() {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(200.0)));
        let s = b.sink(Farads::from_femto(5.0), Seconds::from_pico(100.0));
        b.connect(
            src,
            s,
            Wire::new(Ohms::new(100.0), Farads::from_femto(10.0)),
        )
        .unwrap();
        let tree = b.build().unwrap();
        let r = evaluate(&tree, &BufferLibrary::empty(), &[]).unwrap();
        // Root load = 10 + 5 = 15 fF; driver delay = 200Ω·15fF = 3 ps.
        // Wire delay = 100Ω·(5 + 5) fF = 1 ps. Arrival = 4 ps. Slack = 96 ps.
        assert!((r.root_load.femtos() - 15.0).abs() < 1e-9);
        assert!((r.slack.picos() - 96.0).abs() < 1e-9);
        assert_eq!(r.critical_sink, s);
        assert_eq!(r.buffer_count, 0);
    }

    /// Buffer halves a long 2-pin line; hand-computed arrival.
    #[test]
    fn buffered_two_pin_hand_computed() {
        let lib = lib1();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(200.0)));
        let mid = b.buffer_site();
        let s = b.sink(Farads::from_femto(5.0), Seconds::from_pico(1000.0));
        let w = Wire::new(Ohms::new(400.0), Farads::from_femto(40.0));
        b.connect(src, mid, w).unwrap();
        b.connect(mid, s, w).unwrap();
        let tree = b.build().unwrap();

        let unbuf = evaluate(&tree, &lib, &[]).unwrap();
        // Unbuffered: root load = 40+40+5 = 85 fF. Driver: 200·85 fF = 17 ps.
        // Wire1: 400·(20+45) = 26 ps. Wire2: 400·(20+5) = 10 ps. Arrival 53 ps.
        assert!((unbuf.slack.picos() - (1000.0 - 53.0)).abs() < 1e-9);

        let id = BufferTypeId::new(0);
        let buf = evaluate(&tree, &lib, &[(mid, id)]).unwrap();
        // Buffered: root load = 40 + 5(buf cin) = 45 fF. Driver: 200·45 = 9 ps.
        // Wire1: 400·(20+5) = 10 ps. Buffer: 20 + 100·(40+5) fF = 24.5 ps.
        // Wire2: 400·(20+5) = 10 ps. Arrival = 53.5 ps.
        assert!((buf.slack.picos() - (1000.0 - 53.5)).abs() < 1e-9);
        assert!((buf.root_load.femtos() - 45.0).abs() < 1e-9);
        assert_eq!(buf.buffer_count, 1);
        assert_eq!(buf.total_cost, 1.0);
    }

    /// A buffer on one branch decouples its subtree from the other branch.
    #[test]
    fn buffer_decouples_sibling_branch() {
        let lib = lib1();
        let mk = |with_site_buffered: bool| {
            let mut b = TreeBuilder::new();
            let src = b.source(Driver::new(Ohms::new(500.0)));
            let tee = b.internal();
            let site = b.buffer_site();
            let fast = b.sink(Farads::from_femto(2.0), Seconds::from_pico(50.0));
            let slow = b.sink(Farads::from_femto(100.0), Seconds::from_pico(5000.0));
            b.connect(
                src,
                tee,
                Wire::new(Ohms::new(50.0), Farads::from_femto(4.0)),
            )
            .unwrap();
            b.connect(
                tee,
                fast,
                Wire::new(Ohms::new(50.0), Farads::from_femto(4.0)),
            )
            .unwrap();
            b.connect(tee, site, Wire::zero()).unwrap();
            b.connect(
                site,
                slow,
                Wire::new(Ohms::new(800.0), Farads::from_femto(80.0)),
            )
            .unwrap();
            let tree = b.build().unwrap();
            let placements: &[(NodeId, BufferTypeId)] = if with_site_buffered {
                &[(site, BufferTypeId::new(0))]
            } else {
                &[]
            };
            let (rep, fast_id) = (evaluate(&tree, &lib, placements).unwrap(), fast);
            rep.sink_slacks
                .iter()
                .find(|(n, _)| *n == fast_id)
                .unwrap()
                .1
        };
        let fast_slack_unbuffered = mk(false);
        let fast_slack_buffered = mk(true);
        // Shielding the 180 fF branch behind a 5 fF buffer input must help
        // the fast sink substantially.
        assert!(fast_slack_buffered > fast_slack_unbuffered + Seconds::from_pico(10.0));
    }

    #[test]
    fn illegal_assignments_rejected() {
        let lib = lib1();
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let mid = b.internal(); // NOT a site
        let s = b.sink(Farads::ZERO, Seconds::ZERO);
        b.connect(src, mid, Wire::from_length(&tech, Microns::new(10.0)))
            .unwrap();
        b.connect(mid, s, Wire::from_length(&tech, Microns::new(10.0)))
            .unwrap();
        let tree = b.build().unwrap();

        let id = BufferTypeId::new(0);
        assert_eq!(
            evaluate(&tree, &lib, &[(mid, id)]).unwrap_err(),
            TreeError::IllegalAssignment { node: mid }
        );
        let ghost = NodeId::new(42);
        assert_eq!(
            evaluate(&tree, &lib, &[(ghost, id)]).unwrap_err(),
            TreeError::UnknownNode { node: ghost }
        );
    }

    #[test]
    fn duplicate_placement_rejected() {
        let lib = lib1();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let mid = b.buffer_site();
        let s = b.sink(Farads::ZERO, Seconds::ZERO);
        b.connect(src, mid, Wire::zero()).unwrap();
        b.connect(mid, s, Wire::zero()).unwrap();
        let tree = b.build().unwrap();
        let id = BufferTypeId::new(0);
        assert_eq!(
            evaluate(&tree, &lib, &[(mid, id), (mid, id)]).unwrap_err(),
            TreeError::IllegalAssignment { node: mid }
        );
    }

    #[test]
    fn subset_constraint_enforced() {
        use fastbuf_buflib::BufferSet;
        use std::sync::Arc;
        let lib = BufferLibrary::paper_synthetic(4).unwrap();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let mut allowed = BufferSet::empty(4);
        allowed.insert(BufferTypeId::new(1));
        let mid = b.internal_with(crate::node::SiteConstraint::Subset(Arc::new(allowed)));
        let s = b.sink(Farads::ZERO, Seconds::ZERO);
        b.connect(src, mid, Wire::zero()).unwrap();
        b.connect(mid, s, Wire::zero()).unwrap();
        let tree = b.build().unwrap();

        assert!(evaluate(&tree, &lib, &[(mid, BufferTypeId::new(1))]).is_ok());
        assert_eq!(
            evaluate(&tree, &lib, &[(mid, BufferTypeId::new(2))]).unwrap_err(),
            TreeError::IllegalAssignment { node: mid }
        );
    }

    #[test]
    fn downstream_capacitance_totals() {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let tee = b.internal();
        let s1 = b.sink(Farads::from_femto(3.0), Seconds::ZERO);
        let s2 = b.sink(Farads::from_femto(4.0), Seconds::ZERO);
        b.connect(src, tee, Wire::new(Ohms::ZERO, Farads::from_femto(10.0)))
            .unwrap();
        b.connect(tee, s1, Wire::new(Ohms::ZERO, Farads::from_femto(1.0)))
            .unwrap();
        b.connect(tee, s2, Wire::new(Ohms::ZERO, Farads::from_femto(2.0)))
            .unwrap();
        let tree = b.build().unwrap();
        let down = downstream_capacitance(&tree);
        assert!((down[tee.index()].femtos() - 10.0).abs() < 1e-9); // 1+3 + 2+4
        assert!((down[src.index()].femtos() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn slews_hand_computed_per_stage() {
        use crate::delay::LN9;
        let lib = lib1();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(200.0)));
        let mid = b.buffer_site();
        let s = b.sink(Farads::from_femto(5.0), Seconds::from_pico(1000.0));
        let w = Wire::new(Ohms::new(400.0), Farads::from_femto(40.0));
        b.connect(src, mid, w).unwrap();
        b.connect(mid, s, w).unwrap();
        let tree = b.build().unwrap();

        // Unbuffered: one stage, endpoint = sink.
        // stage wire delay = 400·(20+45) + 400·(20+5) = 36 ps;
        // slew = ln9·(200·85 fF + 36 ps) = ln9·53 ps.
        let unbuf = evaluate(&tree, &lib, &[]).unwrap();
        assert!((unbuf.max_slew.picos() - LN9 * 53.0).abs() < 1e-9);
        assert_eq!(unbuf.worst_slew_node, s);

        // Buffered at mid: stage 1 ends at the buffer input
        // (ln9·(200·45 + 10) = ln9·19 ps... wait, 200·45 fF = 9 ps), stage 2
        // at the sink (ln9·(100·45 fF + 10 ps) = ln9·14.5 ps).
        let buf = evaluate(&tree, &lib, &[(mid, BufferTypeId::new(0))]).unwrap();
        assert!(
            (buf.max_slew.picos() - LN9 * 19.0).abs() < 1e-9,
            "{}",
            buf.max_slew
        );
        assert_eq!(buf.worst_slew_node, mid);
        // Buffering strictly reduces the worst slew here.
        assert!(buf.max_slew < unbuf.max_slew);
    }

    #[test]
    fn buffer_output_slew_adds_to_stage_slew() {
        use crate::delay::LN9;
        let lib = BufferLibrary::new(vec![BufferType::new(
            "b",
            Ohms::new(100.0),
            Farads::from_femto(5.0),
            Seconds::from_pico(20.0),
        )
        .with_output_slew(Seconds::from_pico(20.0))])
        .unwrap();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(200.0)));
        let mid = b.buffer_site();
        let s = b.sink(Farads::from_femto(5.0), Seconds::from_pico(1000.0));
        let w = Wire::new(Ohms::new(400.0), Farads::from_femto(40.0));
        b.connect(src, mid, w).unwrap();
        b.connect(mid, s, w).unwrap();
        let tree = b.build().unwrap();
        let buf = evaluate(&tree, &lib, &[(mid, BufferTypeId::new(0))]).unwrap();
        // Driver stage ends at the buffer input: ln9·(200·45 fF + 10 ps) =
        // ln9·19 ≈ 41.7 ps. Buffer stage ends at the sink and now carries
        // the intrinsic output slew: 20 + ln9·14.5 ≈ 51.9 ps — the worst.
        let expected = 20.0 + LN9 * 14.5;
        assert!(
            (buf.max_slew.picos() - expected).abs() < 1e-9,
            "{} vs {expected}",
            buf.max_slew.picos()
        );
        assert_eq!(buf.worst_slew_node, s);
    }

    #[test]
    fn evaluate_with_elmore_is_bit_identical_to_evaluate() {
        let lib = lib1();
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(300.0)));
        let mid = b.buffer_site();
        let s = b.sink(Farads::from_femto(12.0), Seconds::from_pico(700.0));
        b.connect(src, mid, Wire::from_length(&tech, Microns::new(2500.0)))
            .unwrap();
        b.connect(mid, s, Wire::from_length(&tech, Microns::new(2500.0)))
            .unwrap();
        let tree = b.build().unwrap();
        for placements in [vec![], vec![(mid, BufferTypeId::new(0))]] {
            let a = evaluate(&tree, &lib, &placements).unwrap();
            let b = evaluate_with(&tree, &lib, &placements, &ElmoreModel).unwrap();
            assert_eq!(a.slack.value().to_bits(), b.slack.value().to_bits());
            assert_eq!(a.max_slew.value().to_bits(), b.max_slew.value().to_bits());
        }
    }

    #[test]
    fn scaled_elmore_shrinks_wire_dominated_delay() {
        use crate::delay::ScaledElmoreModel;
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(100.0)));
        let s = b.sink(Farads::from_femto(5.0), Seconds::from_pico(1000.0));
        b.connect(src, s, Wire::from_length(&tech, Microns::new(8000.0)))
            .unwrap();
        let tree = b.build().unwrap();
        let lib = BufferLibrary::empty();
        let elmore = evaluate(&tree, &lib, &[]).unwrap();
        let scaled = evaluate_with(&tree, &lib, &[], &ScaledElmoreModel::default()).unwrap();
        // Less wire delay -> more slack, smaller slew.
        assert!(scaled.slack > elmore.slack);
        assert!(scaled.max_slew < elmore.max_slew);
    }

    #[test]
    fn multi_sink_slacks_reported_per_sink() {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(100.0)));
        let tee = b.internal();
        let s1 = b.sink(Farads::from_femto(1.0), Seconds::from_pico(10.0));
        let s2 = b.sink(Farads::from_femto(1.0), Seconds::from_pico(500.0));
        b.connect(
            src,
            tee,
            Wire::new(Ohms::new(10.0), Farads::from_femto(2.0)),
        )
        .unwrap();
        b.connect(tee, s1, Wire::zero()).unwrap();
        b.connect(tee, s2, Wire::zero()).unwrap();
        let tree = b.build().unwrap();
        let r = evaluate(&tree, &BufferLibrary::empty(), &[]).unwrap();
        assert_eq!(r.sink_slacks.len(), 2);
        assert_eq!(r.critical_sink, s1);
        // Same arrival, different RAT: slack gap equals RAT gap.
        let gap = r.sink_slacks[1].1 - r.sink_slacks[0].1;
        assert!((gap.picos() - 490.0).abs() < 1e-9);
    }
}
