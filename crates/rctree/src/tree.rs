//! The routing tree and its builder.

use fastbuf_buflib::units::{Farads, Seconds};
use fastbuf_buflib::Driver;

use crate::error::TreeError;
use crate::node::{NodeId, NodeKind, SiteConstraint, SiteVariation, Wire};
use crate::stats::TreeStats;

/// An immutable, validated routing tree.
///
/// Built with [`TreeBuilder`]. Guarantees after construction:
///
/// * exactly one source, which is the root;
/// * every other node has exactly one parent and is reachable from the root;
/// * all leaves are sinks and all sinks are leaves;
/// * all wires and sink parameters are finite and non-negative;
/// * a post-order traversal (children before parents) is precomputed.
#[derive(Clone, Debug)]
pub struct RoutingTree {
    kinds: Vec<NodeKind>,
    sites: Vec<SiteConstraint>,
    variation: Vec<SiteVariation>,
    parent: Vec<Option<NodeId>>,
    wires: Vec<Wire>,
    child_start: Vec<u32>,
    child_list: Vec<NodeId>,
    postorder: Vec<NodeId>,
    root: NodeId,
    sink_count: usize,
    site_count: usize,
}

impl RoutingTree {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// The root (source) node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The source driver.
    pub fn driver(&self) -> &Driver {
        match &self.kinds[self.root.index()] {
            NodeKind::Source { driver } => driver,
            _ => unreachable!("root is always a source"),
        }
    }

    /// The kind of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from this tree.
    #[inline]
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.kinds[node.index()]
    }

    /// The buffer-site constraint at `node` ([`SiteConstraint::NotASite`]
    /// for sinks and the source).
    #[inline]
    pub fn site_constraint(&self, node: NodeId) -> &SiteConstraint {
        &self.sites[node.index()]
    }

    /// `true` if buffers may be inserted at `node`.
    #[inline]
    pub fn is_buffer_site(&self, node: NodeId) -> bool {
        self.sites[node.index()].is_site()
    }

    /// The local process-variation factors at `node`
    /// ([`SiteVariation::NOMINAL`] unless edited). Only consulted where a
    /// buffer is actually inserted; nominal everywhere reproduces the
    /// variation-free arithmetic bit for bit.
    #[inline]
    pub fn site_variation(&self, node: NodeId) -> SiteVariation {
        self.variation[node.index()]
    }

    /// `true` if any node carries a non-nominal [`SiteVariation`].
    pub fn has_site_variation(&self) -> bool {
        self.variation.iter().any(|v| !v.is_nominal())
    }

    /// The parent of `node` (`None` for the root).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// The wire from `node` to its parent (`None` for the root).
    #[inline]
    pub fn wire_to_parent(&self, node: NodeId) -> Option<&Wire> {
        if self.parent[node.index()].is_some() {
            Some(&self.wires[node.index()])
        } else {
            None
        }
    }

    /// The children of `node`.
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.child_list[self.child_start[i] as usize..self.child_start[i + 1] as usize]
    }

    /// Nodes in post-order: every node appears after all of its children.
    /// The last entry is the root. The reversed slice visits parents before
    /// children (a valid top-down order).
    #[inline]
    pub fn postorder(&self) -> &[NodeId] {
        &self.postorder
    }

    /// Iterates over all node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len()).map(NodeId::new)
    }

    /// Iterates over sink nodes in index order.
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.kinds[n.index()].is_sink())
    }

    /// Iterates over buffer positions in index order.
    pub fn buffer_sites(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.is_buffer_site(n))
    }

    /// Number of sinks (the paper's `m`).
    #[inline]
    pub fn sink_count(&self) -> usize {
        self.sink_count
    }

    /// Number of buffer positions (the paper's `n`).
    #[inline]
    pub fn buffer_site_count(&self) -> usize {
        self.site_count
    }

    /// Summary statistics (node/sink/site counts, depth, total parasitics).
    pub fn stats(&self) -> TreeStats {
        TreeStats::compute(self)
    }

    /// Replaces the wire from `node` to its parent — a topology-preserving
    /// edit: ids, parents, children, and the post-order stay valid, so
    /// per-subtree caches keyed on node ids survive (only the path from
    /// `node`'s parent to the root needs re-solving; see
    /// `fastbuf-incremental`).
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`], [`TreeError::NoParentWire`] (the root
    /// has no parent wire), or [`TreeError::InvalidWire`] (negative /
    /// non-finite parasitics).
    pub fn set_wire_to_parent(&mut self, node: NodeId, wire: Wire) -> Result<(), TreeError> {
        if node.index() >= self.kinds.len() {
            return Err(TreeError::UnknownNode { node });
        }
        if self.parent[node.index()].is_none() {
            return Err(TreeError::NoParentWire { node });
        }
        if !wire.is_valid() {
            return Err(TreeError::InvalidWire { child: node });
        }
        self.wires[node.index()] = wire;
        Ok(())
    }

    /// Replaces the required arrival time of sink `node` (topology
    /// preserving, like [`RoutingTree::set_wire_to_parent`]).
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`], [`TreeError::NotASink`], or
    /// [`TreeError::InvalidSink`] (non-finite RAT).
    pub fn set_sink_rat(&mut self, node: NodeId, rat: Seconds) -> Result<(), TreeError> {
        if !rat.is_finite() {
            return Err(TreeError::InvalidSink { node });
        }
        match self.kinds.get_mut(node.index()) {
            None => Err(TreeError::UnknownNode { node }),
            Some(NodeKind::Sink {
                required_arrival, ..
            }) => {
                *required_arrival = rat;
                Ok(())
            }
            Some(_) => Err(TreeError::NotASink { node }),
        }
    }

    /// Replaces the load capacitance of sink `node` (topology preserving).
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`], [`TreeError::NotASink`], or
    /// [`TreeError::InvalidSink`] (negative / non-finite capacitance).
    pub fn set_sink_cap(&mut self, node: NodeId, cap: Farads) -> Result<(), TreeError> {
        if !cap.is_finite() || cap < Farads::ZERO {
            return Err(TreeError::InvalidSink { node });
        }
        match self.kinds.get_mut(node.index()) {
            None => Err(TreeError::UnknownNode { node }),
            Some(NodeKind::Sink { capacitance, .. }) => {
                *capacitance = cap;
                Ok(())
            }
            Some(_) => Err(TreeError::NotASink { node }),
        }
    }

    /// Replaces the buffer-site constraint at `node`, keeping
    /// [`RoutingTree::buffer_site_count`] in sync (topology preserving).
    /// Mirrors [`TreeBuilder::set_site_constraint`]: clearing a constraint
    /// on a sink or the source is an allowed no-op, placing one there is an
    /// error.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`] or [`TreeError::SiteOnNonInternal`].
    pub fn set_site_constraint(
        &mut self,
        node: NodeId,
        constraint: SiteConstraint,
    ) -> Result<(), TreeError> {
        let kind = self
            .kinds
            .get(node.index())
            .ok_or(TreeError::UnknownNode { node })?;
        if !kind.is_internal() && constraint.is_site() {
            return Err(TreeError::SiteOnNonInternal { node });
        }
        let was = self.sites[node.index()].is_site();
        let is = constraint.is_site();
        self.sites[node.index()] = constraint;
        match (was, is) {
            (true, false) => self.site_count -= 1,
            (false, true) => self.site_count += 1,
            _ => {}
        }
        Ok(())
    }

    /// Replaces the process-variation factors at `node` (topology
    /// preserving, like [`RoutingTree::set_wire_to_parent`]). The factors
    /// derate any buffer *inserted* at `node`, so they are inert on nodes
    /// that are not buffer sites — setting them anywhere is allowed, which
    /// keeps variation edits independent of site block/unblock edits.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`] or [`TreeError::InvalidVariation`]
    /// (non-finite or non-positive scale factors).
    pub fn set_site_variation(
        &mut self,
        node: NodeId,
        variation: SiteVariation,
    ) -> Result<(), TreeError> {
        if node.index() >= self.kinds.len() {
            return Err(TreeError::UnknownNode { node });
        }
        if !variation.is_valid() {
            return Err(TreeError::InvalidVariation { node });
        }
        self.variation[node.index()] = variation;
        Ok(())
    }

    /// A copy of this tree with every sink's required arrival time
    /// multiplied by `factor` — the "required-time derate" of a timing
    /// scenario (a pessimistic corner uses `factor < 1`). Topology, wires,
    /// loads and node ids are unchanged, so placements and `NodeId`s remain
    /// valid across the derated and original trees.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive (callers such as
    /// `fastbuf-api` validate scenario derates before reaching here).
    pub fn with_derated_rats(&self, factor: f64) -> RoutingTree {
        assert!(
            factor.is_finite() && factor > 0.0,
            "RAT derate must be finite and positive, got {factor}"
        );
        let mut derated = self.clone();
        for kind in &mut derated.kinds {
            if let NodeKind::Sink {
                required_arrival, ..
            } = kind
            {
                *required_arrival = Seconds::new(required_arrival.value() * factor);
            }
        }
        derated
    }
}

/// Incremental builder for [`RoutingTree`].
///
/// Create nodes with [`TreeBuilder::source`], [`TreeBuilder::sink`],
/// [`TreeBuilder::internal`] or [`TreeBuilder::buffer_site`]; connect them
/// with [`TreeBuilder::connect`]; finish with [`TreeBuilder::build`], which
/// validates the whole structure.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::Driver;
/// use fastbuf_buflib::units::{Farads, Ohms, Seconds};
/// use fastbuf_rctree::{TreeBuilder, Wire};
///
/// let mut b = TreeBuilder::new();
/// let src = b.source(Driver::new(Ohms::new(100.0)));
/// let tee = b.internal();
/// let s1 = b.sink(Farads::from_femto(5.0), Seconds::from_pico(300.0));
/// let s2 = b.sink(Farads::from_femto(8.0), Seconds::from_pico(250.0));
/// b.connect(src, tee, Wire::new(Ohms::new(10.0), Farads::from_femto(20.0)))?;
/// b.connect(tee, s1, Wire::new(Ohms::new(5.0), Farads::from_femto(10.0)))?;
/// b.connect(tee, s2, Wire::new(Ohms::new(5.0), Farads::from_femto(10.0)))?;
/// let tree = b.build()?;
/// assert_eq!(tree.node_count(), 4);
/// assert_eq!(tree.children(tee).len(), 2);
/// # Ok::<(), fastbuf_rctree::TreeError>(())
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    kinds: Vec<NodeKind>,
    sites: Vec<SiteConstraint>,
    parent: Vec<Option<NodeId>>,
    wires: Vec<Wire>,
    children: Vec<Vec<NodeId>>,
    source: Option<NodeId>,
    extra_source: Option<NodeId>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TreeBuilder::default()
    }

    fn push(&mut self, kind: NodeKind, site: SiteConstraint) -> NodeId {
        let id = NodeId::new(self.kinds.len());
        self.kinds.push(kind);
        self.sites.push(site);
        self.parent.push(None);
        self.wires.push(Wire::zero());
        self.children.push(Vec::new());
        id
    }

    /// Adds the source node. The first call defines the root; additional
    /// calls are recorded and reported as
    /// [`TreeError::MultipleSources`] by [`TreeBuilder::build`].
    pub fn source(&mut self, driver: Driver) -> NodeId {
        let id = self.push(NodeKind::Source { driver }, SiteConstraint::NotASite);
        if self.source.is_none() {
            self.source = Some(id);
        } else if self.extra_source.is_none() {
            self.extra_source = Some(id);
        }
        id
    }

    /// Adds a sink with the given load capacitance and required arrival
    /// time. Parameter validity is checked by [`TreeBuilder::build`].
    pub fn sink(&mut self, capacitance: Farads, required_arrival: Seconds) -> NodeId {
        self.push(
            NodeKind::Sink {
                capacitance,
                required_arrival,
            },
            SiteConstraint::NotASite,
        )
    }

    /// Adds an internal node that is *not* a buffer position (e.g. a Steiner
    /// branching point).
    pub fn internal(&mut self) -> NodeId {
        self.push(NodeKind::Internal, SiteConstraint::NotASite)
    }

    /// Adds an internal node where any library buffer may be inserted.
    pub fn buffer_site(&mut self) -> NodeId {
        self.push(NodeKind::Internal, SiteConstraint::AnyBuffer)
    }

    /// Adds an internal node with an explicit site constraint.
    pub fn internal_with(&mut self, constraint: SiteConstraint) -> NodeId {
        self.push(NodeKind::Internal, constraint)
    }

    /// Replaces the site constraint of an existing internal node.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`] if `node` was not created by this builder;
    /// [`TreeError::SiteOnNonInternal`] if `node` is a source or sink and
    /// `constraint` is anything but [`SiteConstraint::NotASite`].
    pub fn set_site_constraint(
        &mut self,
        node: NodeId,
        constraint: SiteConstraint,
    ) -> Result<(), TreeError> {
        let kind = self
            .kinds
            .get(node.index())
            .ok_or(TreeError::UnknownNode { node })?;
        if !kind.is_internal() && constraint.is_site() {
            return Err(TreeError::SiteOnNonInternal { node });
        }
        self.sites[node.index()] = constraint;
        Ok(())
    }

    /// Connects `child` under `parent` through `wire`.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`], [`TreeError::SelfLoop`],
    /// [`TreeError::DuplicateParent`] (child already connected),
    /// [`TreeError::SourceHasParent`], or [`TreeError::InvalidWire`]
    /// (negative / non-finite parasitics).
    pub fn connect(&mut self, parent: NodeId, child: NodeId, wire: Wire) -> Result<(), TreeError> {
        if parent.index() >= self.kinds.len() {
            return Err(TreeError::UnknownNode { node: parent });
        }
        if child.index() >= self.kinds.len() {
            return Err(TreeError::UnknownNode { node: child });
        }
        if parent == child {
            return Err(TreeError::SelfLoop { node: parent });
        }
        if self.kinds[child.index()].is_source() {
            return Err(TreeError::SourceHasParent);
        }
        if self.parent[child.index()].is_some() {
            return Err(TreeError::DuplicateParent { node: child });
        }
        if !wire.is_valid() {
            return Err(TreeError::InvalidWire { child });
        }
        self.parent[child.index()] = Some(parent);
        self.wires[child.index()] = wire;
        self.children[parent.index()].push(child);
        Ok(())
    }

    /// Number of nodes created so far.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Validates the structure and produces the immutable tree.
    ///
    /// # Errors
    ///
    /// Any of the structural [`TreeError`] variants; see the crate
    /// documentation for the invariants enforced.
    pub fn build(self) -> Result<RoutingTree, TreeError> {
        let root = self.source.ok_or(TreeError::NoSource)?;
        if let Some(second) = self.extra_source {
            return Err(TreeError::MultipleSources { second });
        }
        let n = self.kinds.len();

        // Per-node validity.
        let mut sink_count = 0usize;
        let mut site_count = 0usize;
        for i in 0..n {
            let id = NodeId::new(i);
            match &self.kinds[i] {
                NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => {
                    sink_count += 1;
                    if !capacitance.is_finite()
                        || *capacitance < Farads::ZERO
                        || !required_arrival.is_finite()
                    {
                        return Err(TreeError::InvalidSink { node: id });
                    }
                    if !self.children[i].is_empty() {
                        return Err(TreeError::SinkWithChildren { node: id });
                    }
                }
                NodeKind::Internal => {
                    if self.children[i].is_empty() {
                        return Err(TreeError::InternalLeaf { node: id });
                    }
                    if self.sites[i].is_site() {
                        site_count += 1;
                    }
                }
                NodeKind::Source { .. } => {}
            }
        }
        if sink_count == 0 {
            return Err(TreeError::NoSinks);
        }

        // Reachability + post-order via iterative DFS.
        let mut postorder = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack of (node, next-child-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        visited[root.index()] = true;
        while let Some((node, ci)) = stack.pop() {
            let kids = &self.children[node.index()];
            if ci < kids.len() {
                stack.push((node, ci + 1));
                let child = kids[ci];
                // `connect` guarantees each child has exactly one parent, so
                // a repeat visit is impossible in a well-formed builder.
                visited[child.index()] = true;
                stack.push((child, 0));
            } else {
                postorder.push(node);
            }
        }
        if let Some(i) = visited.iter().position(|&v| !v) {
            return Err(TreeError::Unreachable {
                node: NodeId::new(i),
            });
        }

        // Children CSR.
        let mut child_start = Vec::with_capacity(n + 1);
        let mut child_list = Vec::with_capacity(n.saturating_sub(1));
        child_start.push(0u32);
        for kids in &self.children {
            child_list.extend_from_slice(kids);
            child_start.push(child_list.len() as u32);
        }

        Ok(RoutingTree {
            kinds: self.kinds,
            sites: self.sites,
            variation: vec![SiteVariation::NOMINAL; n],
            parent: self.parent,
            wires: self.wires,
            child_start,
            child_list,
            postorder,
            root,
            sink_count,
            site_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::units::Ohms;

    fn wire() -> Wire {
        Wire::new(Ohms::new(10.0), Farads::from_femto(5.0))
    }

    fn sink_args() -> (Farads, Seconds) {
        (Farads::from_femto(4.0), Seconds::from_pico(100.0))
    }

    /// src -> a(site) -> {s1, b(internal) -> s2}
    fn small_tree() -> RoutingTree {
        let mut b = TreeBuilder::new();
        let (c, r) = sink_args();
        let src = b.source(Driver::new(Ohms::new(100.0)));
        let a = b.buffer_site();
        let s1 = b.sink(c, r);
        let t = b.internal();
        let s2 = b.sink(c, r);
        b.connect(src, a, wire()).unwrap();
        b.connect(a, s1, wire()).unwrap();
        b.connect(a, t, wire()).unwrap();
        b.connect(t, s2, wire()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_exposes_structure() {
        let t = small_tree();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.sink_count(), 2);
        assert_eq!(t.buffer_site_count(), 1);
        assert_eq!(t.root(), NodeId::new(0));
        assert_eq!(t.parent(NodeId::new(1)), Some(NodeId::new(0)));
        assert_eq!(t.parent(t.root()), None);
        assert!(t.wire_to_parent(t.root()).is_none());
        assert!(t.wire_to_parent(NodeId::new(1)).is_some());
        assert_eq!(
            t.children(NodeId::new(1)),
            &[NodeId::new(2), NodeId::new(3)]
        );
        assert_eq!(t.sinks().count(), 2);
        assert_eq!(t.buffer_sites().count(), 1);
        assert_eq!(t.driver().resistance(), Ohms::new(100.0));
    }

    #[test]
    fn postorder_children_before_parents() {
        let t = small_tree();
        let pos: Vec<usize> = {
            let mut pos = vec![0; t.node_count()];
            for (i, n) in t.postorder().iter().enumerate() {
                pos[n.index()] = i;
            }
            pos
        };
        for n in t.node_ids() {
            for &c in t.children(n) {
                assert!(pos[c.index()] < pos[n.index()], "{c} must precede {n}");
            }
        }
        assert_eq!(*t.postorder().last().unwrap(), t.root());
        assert_eq!(t.postorder().len(), t.node_count());
    }

    #[test]
    fn no_source_error() {
        let mut b = TreeBuilder::new();
        let (c, r) = sink_args();
        b.sink(c, r);
        assert_eq!(b.build().unwrap_err(), TreeError::NoSource);
    }

    #[test]
    fn multiple_sources_error() {
        let mut b = TreeBuilder::new();
        let (c, r) = sink_args();
        let s0 = b.source(Driver::default());
        let snk = b.sink(c, r);
        b.connect(s0, snk, wire()).unwrap();
        let s1 = b.source(Driver::default());
        assert_eq!(
            b.build().unwrap_err(),
            TreeError::MultipleSources { second: s1 }
        );
    }

    #[test]
    fn no_sinks_error() {
        let mut b = TreeBuilder::new();
        b.source(Driver::default());
        assert_eq!(b.build().unwrap_err(), TreeError::NoSinks);
    }

    #[test]
    fn internal_leaf_error() {
        let mut b = TreeBuilder::new();
        let (c, r) = sink_args();
        let src = b.source(Driver::default());
        let snk = b.sink(c, r);
        let dead = b.internal();
        b.connect(src, snk, wire()).unwrap();
        b.connect(src, dead, wire()).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            TreeError::InternalLeaf { node: dead }
        );
    }

    #[test]
    fn sink_with_children_error() {
        let mut b = TreeBuilder::new();
        let (c, r) = sink_args();
        let src = b.source(Driver::default());
        let s1 = b.sink(c, r);
        let s2 = b.sink(c, r);
        b.connect(src, s1, wire()).unwrap();
        b.connect(s1, s2, wire()).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            TreeError::SinkWithChildren { node: s1 }
        );
    }

    #[test]
    fn unreachable_error() {
        let mut b = TreeBuilder::new();
        let (c, r) = sink_args();
        let src = b.source(Driver::default());
        let s1 = b.sink(c, r);
        let orphan = b.sink(c, r);
        b.connect(src, s1, wire()).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            TreeError::Unreachable { node: orphan }
        );
    }

    #[test]
    fn connect_errors() {
        let mut b = TreeBuilder::new();
        let (c, r) = sink_args();
        let src = b.source(Driver::default());
        let s1 = b.sink(c, r);
        let ghost = NodeId::new(99);

        assert_eq!(
            b.connect(ghost, s1, wire()).unwrap_err(),
            TreeError::UnknownNode { node: ghost }
        );
        assert_eq!(
            b.connect(src, ghost, wire()).unwrap_err(),
            TreeError::UnknownNode { node: ghost }
        );
        assert_eq!(
            b.connect(src, src, wire()).unwrap_err(),
            TreeError::SelfLoop { node: src }
        );
        assert_eq!(
            b.connect(s1, src, wire()).unwrap_err(),
            TreeError::SourceHasParent
        );
        let bad = Wire::new(Ohms::new(-1.0), Farads::ZERO);
        assert_eq!(
            b.connect(src, s1, bad).unwrap_err(),
            TreeError::InvalidWire { child: s1 }
        );
        b.connect(src, s1, wire()).unwrap();
        assert_eq!(
            b.connect(src, s1, wire()).unwrap_err(),
            TreeError::DuplicateParent { node: s1 }
        );
    }

    #[test]
    fn invalid_sink_error() {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let s = b.sink(Farads::new(-1e-15), Seconds::ZERO);
        b.connect(src, s, wire()).unwrap();
        assert_eq!(b.build().unwrap_err(), TreeError::InvalidSink { node: s });

        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let s = b.sink(Farads::ZERO, Seconds::new(f64::INFINITY));
        b.connect(src, s, wire()).unwrap();
        assert_eq!(b.build().unwrap_err(), TreeError::InvalidSink { node: s });
    }

    #[test]
    fn site_constraint_management() {
        let mut b = TreeBuilder::new();
        let (c, r) = sink_args();
        let src = b.source(Driver::default());
        let mid = b.internal();
        let snk = b.sink(c, r);
        b.connect(src, mid, wire()).unwrap();
        b.connect(mid, snk, wire()).unwrap();

        assert_eq!(
            b.set_site_constraint(snk, SiteConstraint::AnyBuffer)
                .unwrap_err(),
            TreeError::SiteOnNonInternal { node: snk }
        );
        // Clearing a constraint on a sink is a no-op and allowed.
        b.set_site_constraint(snk, SiteConstraint::NotASite)
            .unwrap();
        b.set_site_constraint(mid, SiteConstraint::AnyBuffer)
            .unwrap();
        let t = b.build().unwrap();
        assert!(t.is_buffer_site(mid));
        assert_eq!(t.buffer_site_count(), 1);
    }

    #[test]
    fn derated_rats_scale_sinks_only() {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let mid = b.buffer_site();
        let snk = b.sink(Farads::from_femto(5.0), Seconds::from_pico(800.0));
        b.connect(src, mid, wire()).unwrap();
        b.connect(mid, snk, wire()).unwrap();
        let t = b.build().unwrap();
        let d = t.with_derated_rats(0.75);
        // Same topology, same ids, same wires.
        assert_eq!(d.node_count(), t.node_count());
        assert_eq!(d.postorder(), t.postorder());
        assert_eq!(
            d.wire_to_parent(snk).unwrap().resistance(),
            t.wire_to_parent(snk).unwrap().resistance()
        );
        match (d.kind(snk), t.kind(snk)) {
            (
                NodeKind::Sink {
                    required_arrival: derated,
                    capacitance: dc,
                },
                NodeKind::Sink {
                    required_arrival: original,
                    capacitance: oc,
                },
            ) => {
                assert_eq!(derated.value(), original.value() * 0.75);
                assert_eq!(dc, oc);
            }
            _ => panic!("sink stays a sink"),
        }
        // Identity derate is a plain clone.
        let same = t.with_derated_rats(1.0);
        match same.kind(snk) {
            NodeKind::Sink {
                required_arrival, ..
            } => assert_eq!(required_arrival.value().to_bits(), {
                let NodeKind::Sink {
                    required_arrival, ..
                } = t.kind(snk)
                else {
                    unreachable!()
                };
                required_arrival.value().to_bits()
            }),
            _ => panic!("sink stays a sink"),
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn derate_rejects_non_positive_factor() {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let snk = b.sink(Farads::from_femto(5.0), Seconds::from_pico(100.0));
        b.connect(src, snk, wire()).unwrap();
        let _ = b.build().unwrap().with_derated_rats(0.0);
    }

    #[test]
    fn in_place_edits_preserve_topology_and_counts() {
        let mut t = small_tree();
        let post_before = t.postorder().to_vec();
        let sink = NodeId::new(2);
        let site = NodeId::new(1);
        let tee = NodeId::new(3);

        // Wire edit.
        let new_wire = Wire::new(Ohms::new(99.0), Farads::from_femto(3.0));
        t.set_wire_to_parent(sink, new_wire).unwrap();
        assert_eq!(
            t.wire_to_parent(sink).unwrap().resistance(),
            Ohms::new(99.0)
        );

        // Sink edits.
        t.set_sink_rat(sink, Seconds::from_pico(321.0)).unwrap();
        t.set_sink_cap(sink, Farads::from_femto(9.0)).unwrap();
        match t.kind(sink) {
            NodeKind::Sink {
                capacitance,
                required_arrival,
            } => {
                assert_eq!(*capacitance, Farads::from_femto(9.0));
                assert_eq!(*required_arrival, Seconds::from_pico(321.0));
            }
            _ => panic!("sink stays a sink"),
        }

        // Site block / unblock keeps the count in sync.
        assert_eq!(t.buffer_site_count(), 1);
        t.set_site_constraint(site, SiteConstraint::NotASite)
            .unwrap();
        assert_eq!(t.buffer_site_count(), 0);
        assert!(!t.is_buffer_site(site));
        t.set_site_constraint(tee, SiteConstraint::AnyBuffer)
            .unwrap();
        t.set_site_constraint(site, SiteConstraint::AnyBuffer)
            .unwrap();
        assert_eq!(t.buffer_site_count(), 2);
        // Re-applying the same constraint does not double-count.
        t.set_site_constraint(site, SiteConstraint::AnyBuffer)
            .unwrap();
        assert_eq!(t.buffer_site_count(), 2);

        // Topology untouched throughout.
        assert_eq!(t.postorder(), post_before.as_slice());
    }

    #[test]
    fn in_place_edit_errors() {
        let mut t = small_tree();
        let ghost = NodeId::new(99);
        let sink = NodeId::new(2);
        let site = NodeId::new(1);
        let w = wire();

        assert_eq!(
            t.set_wire_to_parent(ghost, w).unwrap_err(),
            TreeError::UnknownNode { node: ghost }
        );
        assert_eq!(
            t.set_wire_to_parent(t.root(), w).unwrap_err(),
            TreeError::NoParentWire { node: t.root() }
        );
        assert_eq!(
            t.set_wire_to_parent(sink, Wire::new(Ohms::new(-1.0), Farads::ZERO))
                .unwrap_err(),
            TreeError::InvalidWire { child: sink }
        );
        assert_eq!(
            t.set_sink_rat(ghost, Seconds::ZERO).unwrap_err(),
            TreeError::UnknownNode { node: ghost }
        );
        assert_eq!(
            t.set_sink_rat(site, Seconds::ZERO).unwrap_err(),
            TreeError::NotASink { node: site }
        );
        assert_eq!(
            t.set_sink_rat(sink, Seconds::new(f64::INFINITY))
                .unwrap_err(),
            TreeError::InvalidSink { node: sink }
        );
        assert_eq!(
            t.set_sink_cap(sink, Farads::new(-1e-15)).unwrap_err(),
            TreeError::InvalidSink { node: sink }
        );
        assert_eq!(
            t.set_site_constraint(sink, SiteConstraint::AnyBuffer)
                .unwrap_err(),
            TreeError::SiteOnNonInternal { node: sink }
        );
        // Clearing on a sink is an allowed no-op (mirrors the builder).
        t.set_site_constraint(sink, SiteConstraint::NotASite)
            .unwrap();
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 100k-node chain exercises the iterative DFS.
        let mut b = TreeBuilder::new();
        let (c, r) = sink_args();
        let src = b.source(Driver::default());
        let mut cur = src;
        for _ in 0..100_000 {
            let nxt = b.buffer_site();
            b.connect(cur, nxt, wire()).unwrap();
            cur = nxt;
        }
        let snk = b.sink(c, r);
        b.connect(cur, snk, wire()).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.node_count(), 100_002);
        assert_eq!(t.postorder().len(), 100_002);
        assert_eq!(t.postorder()[0], snk);
    }
}
