//! Node and wire primitives of a routing tree.

use std::fmt;
use std::sync::Arc;

use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
use fastbuf_buflib::{BufferSet, BufferTypeId, Driver, Technology};

/// Identifier of a node within a [`RoutingTree`](crate::RoutingTree).
///
/// Ids are dense indices assigned by the [`TreeBuilder`](crate::TreeBuilder)
/// in creation order; they are only meaningful relative to the tree that
/// issued them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a tree vertex is.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeKind {
    /// The net's source (root). Exactly one per tree.
    Source {
        /// The driving gate at the source.
        driver: Driver,
    },
    /// A sink (leaf) with its load and timing requirement.
    Sink {
        /// Pin load capacitance, the paper's `c(s)`.
        capacitance: Farads,
        /// Required arrival time, the paper's `RAT(s)`. Slack at the source
        /// is `min_s (RAT(s) − delay(source→s))`.
        required_arrival: Seconds,
    },
    /// An internal vertex (Steiner point or candidate buffer position).
    Internal,
}

impl NodeKind {
    /// `true` for [`NodeKind::Sink`].
    pub fn is_sink(&self) -> bool {
        matches!(self, NodeKind::Sink { .. })
    }

    /// `true` for [`NodeKind::Source`].
    pub fn is_source(&self) -> bool {
        matches!(self, NodeKind::Source { .. })
    }

    /// `true` for [`NodeKind::Internal`].
    pub fn is_internal(&self) -> bool {
        matches!(self, NodeKind::Internal)
    }
}

/// Which buffer types may be inserted at an internal vertex — the paper's
/// `f : V_int → 2^B`.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum SiteConstraint {
    /// Not a buffer position: nothing may be inserted here.
    #[default]
    NotASite,
    /// Any library buffer may be inserted.
    AnyBuffer,
    /// Only the given subset of the library may be inserted. An empty set
    /// behaves like [`SiteConstraint::NotASite`].
    Subset(Arc<BufferSet>),
}

impl SiteConstraint {
    /// `true` if at least buffering is possible here (note a `Subset` with an
    /// empty set returns `false`).
    pub fn is_site(&self) -> bool {
        match self {
            SiteConstraint::NotASite => false,
            SiteConstraint::AnyBuffer => true,
            SiteConstraint::Subset(s) => !s.is_empty(),
        }
    }

    /// `true` if buffer type `id` may be inserted here.
    pub fn allows(&self, id: BufferTypeId) -> bool {
        match self {
            SiteConstraint::NotASite => false,
            SiteConstraint::AnyBuffer => true,
            SiteConstraint::Subset(s) => s.contains(id),
        }
    }
}

/// Per-node derate factors on an inserted buffer's parameters — the
/// tree-local encoding of local (OCV-style) process variation.
///
/// A buffer inserted at a node with variation `(delay_scale, drive_scale)`
/// behaves as if its intrinsic delay were `K · delay_scale` and its driving
/// resistance `R · drive_scale`; its input capacitance and cost are
/// unchanged. The scales apply uniformly to every library type at the node,
/// so the library-wide resistance ordering the hull walk relies on is
/// preserved.
///
/// The nominal value is exactly `(1.0, 1.0)`, and multiplying by `1.0` is
/// bit-exact in IEEE-754 — an all-nominal tree solves bit-identically to
/// one predating variation support.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteVariation {
    delay_scale: f64,
    drive_scale: f64,
}

impl SiteVariation {
    /// The nominal (no-variation) factors: exactly `(1.0, 1.0)`.
    pub const NOMINAL: SiteVariation = SiteVariation {
        delay_scale: 1.0,
        drive_scale: 1.0,
    };

    /// Creates a variation from explicit factors. Validity (finite,
    /// strictly positive) is checked by
    /// [`RoutingTree::set_site_variation`](crate::RoutingTree::set_site_variation).
    pub fn new(delay_scale: f64, drive_scale: f64) -> Self {
        SiteVariation {
            delay_scale,
            drive_scale,
        }
    }

    /// Multiplier on the intrinsic delay `K` of any buffer inserted here.
    #[inline]
    pub fn delay_scale(&self) -> f64 {
        self.delay_scale
    }

    /// Multiplier on the driving resistance `R` of any buffer inserted
    /// here.
    #[inline]
    pub fn drive_scale(&self) -> f64 {
        self.drive_scale
    }

    /// `true` when both factors are exactly `1.0`.
    #[inline]
    pub fn is_nominal(&self) -> bool {
        self.delay_scale == 1.0 && self.drive_scale == 1.0
    }

    /// `true` when both factors are finite and strictly positive (the
    /// precondition every tree mutation enforces).
    pub fn is_valid(&self) -> bool {
        self.delay_scale.is_finite()
            && self.drive_scale.is_finite()
            && self.delay_scale > 0.0
            && self.drive_scale > 0.0
    }
}

impl Default for SiteVariation {
    fn default() -> Self {
        SiteVariation::NOMINAL
    }
}

/// A wire segment: lumped resistance and capacitance, with an optional
/// geometric length (needed by pitch-based [`segmenting`](crate::segment)).
///
/// # Example
///
/// ```
/// use fastbuf_buflib::Technology;
/// use fastbuf_buflib::units::Microns;
/// use fastbuf_rctree::Wire;
///
/// let w = Wire::from_length(&Technology::tsmc180_like(), Microns::new(100.0));
/// assert!((w.resistance().value() - 7.6).abs() < 1e-9);
/// let (a, b) = (w.split(4), w.split(4));
/// assert!((a.resistance().value() - 1.9).abs() < 1e-9);
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Wire {
    resistance: Ohms,
    capacitance: Farads,
    length: Option<Microns>,
}

impl Wire {
    /// Creates a wire from lumped parasitics (no geometric length).
    pub fn new(resistance: Ohms, capacitance: Farads) -> Self {
        Wire {
            resistance,
            capacitance,
            length: None,
        }
    }

    /// Creates a wire of the given length in a technology; parasitics are
    /// `length ×` the technology's per-micron values.
    pub fn from_length(tech: &Technology, length: Microns) -> Self {
        let (r, c) = tech.wire(length);
        Wire {
            resistance: r,
            capacitance: c,
            length: Some(length),
        }
    }

    /// Creates a wire from explicit parasitics and an optional geometric
    /// length (the length is carried as metadata; it is *not* used to
    /// recompute the parasitics).
    pub fn from_parts(resistance: Ohms, capacitance: Farads, length: Option<Microns>) -> Self {
        Wire {
            resistance,
            capacitance,
            length,
        }
    }

    /// The zero wire (0 Ω, 0 F, zero length). Used for the conceptual edge
    /// `(v, v')` of zero resistance and capacitance in the paper's
    /// `AddBuffer` description.
    pub fn zero() -> Self {
        Wire {
            resistance: Ohms::ZERO,
            capacitance: Farads::ZERO,
            length: Some(Microns::ZERO),
        }
    }

    /// Lumped resistance.
    #[inline]
    pub fn resistance(&self) -> Ohms {
        self.resistance
    }

    /// Lumped capacitance.
    #[inline]
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// Geometric length, if known.
    #[inline]
    pub fn length(&self) -> Option<Microns> {
        self.length
    }

    /// An equal division of this wire into `pieces` parts (parasitics and
    /// length all divided by `pieces`).
    ///
    /// # Panics
    ///
    /// Panics if `pieces` is zero.
    pub fn split(&self, pieces: usize) -> Wire {
        assert!(pieces > 0, "cannot split a wire into zero pieces");
        let k = pieces as f64;
        Wire {
            resistance: self.resistance / k,
            capacitance: self.capacitance / k,
            length: self.length.map(|l| l / k),
        }
    }

    /// Elmore delay of this wire driving `downstream` capacitance:
    /// `R · (C/2 + downstream)`.
    #[inline]
    pub fn delay(&self, downstream: Farads) -> Seconds {
        self.resistance * (self.capacitance / 2.0 + downstream)
    }

    /// `true` if both parasitics are finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.resistance.is_finite()
            && self.capacitance.is_finite()
            && self.resistance >= Ohms::ZERO
            && self.capacitance >= Farads::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(12);
        assert_eq!(id.index(), 12);
        assert_eq!(id.to_string(), "n12");
    }

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Internal.is_internal());
        assert!(NodeKind::Source {
            driver: Driver::default()
        }
        .is_source());
        assert!(NodeKind::Sink {
            capacitance: Farads::ZERO,
            required_arrival: Seconds::ZERO
        }
        .is_sink());
    }

    #[test]
    fn site_constraint_allows() {
        use fastbuf_buflib::BufferSet;
        let none = SiteConstraint::NotASite;
        let any = SiteConstraint::AnyBuffer;
        let mut set = BufferSet::empty(4);
        set.insert(BufferTypeId::new(2));
        let sub = SiteConstraint::Subset(Arc::new(set));

        let b2 = BufferTypeId::new(2);
        let b3 = BufferTypeId::new(3);
        assert!(!none.is_site() && !none.allows(b2));
        assert!(any.is_site() && any.allows(b2) && any.allows(b3));
        assert!(sub.is_site() && sub.allows(b2) && !sub.allows(b3));

        let empty = SiteConstraint::Subset(Arc::new(BufferSet::empty(4)));
        assert!(!empty.is_site());
    }

    #[test]
    fn default_constraint_is_not_a_site() {
        assert_eq!(SiteConstraint::default(), SiteConstraint::NotASite);
    }

    #[test]
    fn wire_delay_formula() {
        let w = Wire::new(Ohms::new(100.0), Farads::from_femto(10.0));
        // 100 * (5 fF + 20 fF) = 2.5 ps
        let d = w.delay(Farads::from_femto(20.0));
        assert!((d.picos() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn wire_split_divides_parasitics_and_length() {
        let tech = Technology::tsmc180_like();
        let w = Wire::from_length(&tech, Microns::new(100.0));
        let h = w.split(2);
        assert!((h.resistance().value() - 3.8).abs() < 1e-9);
        assert!((h.capacitance().femtos() - 5.9).abs() < 1e-9);
        assert_eq!(h.length(), Some(Microns::new(50.0)));
    }

    #[test]
    #[should_panic(expected = "zero pieces")]
    fn split_zero_panics() {
        Wire::zero().split(0);
    }

    #[test]
    fn zero_wire_has_no_delay() {
        assert_eq!(
            Wire::zero().delay(Farads::from_femto(1000.0)),
            Seconds::ZERO
        );
    }

    #[test]
    fn validity() {
        assert!(Wire::zero().is_valid());
        assert!(!Wire::new(Ohms::new(-1.0), Farads::ZERO).is_valid());
        assert!(!Wire::new(Ohms::new(f64::INFINITY), Farads::ZERO).is_valid());
        assert!(!Wire::new(Ohms::ZERO, Farads::new(-1e-15)).is_valid());
    }
}
