//! Incremental (ECO) re-solving with subtree candidate caching.
//!
//! The paper's DP builds candidate lists bottom-up per subtree: `N(T_v)`
//! depends only on the tree parameters inside `T_v` and the solve
//! configuration, never on anything upstream of `v`. An edit localized to
//! one branch therefore invalidates **only the lists on the edited node's
//! root path**; every other subtree's list is exactly what a from-scratch
//! solve of the edited tree would recompute. [`IncrementalSolver`] exploits
//! this: it owns the tree, the library, and a
//! [`SubtreeCache`] of per-node candidate
//! lists, applies typed [`Edit`]s, dirties exactly the affected root
//! paths, and re-solves by recomputing dirty subtrees while splicing
//! cached sibling lists into merges unchanged — turning the O(bn²)
//! from-scratch cost into near-O(b·depth·n) for ECO-style workloads.
//!
//! **The headline guarantee: every incremental result is bit-identical to
//! a from-scratch solve of the edited tree** — same slack bits, same
//! placements, same slew verdict. The cache changes *which* computations
//! run, never their arithmetic or order. The differential property harness
//! `tests/incremental_equivalence.rs` asserts this across thousands of
//! random edit scripts × algorithms × slew modes, and the ≤6-site
//! brute-force oracle (`tests/exhaustive_oracle.rs`) re-certifies true
//! optimality after every edit.
//!
//! # Quick start
//!
//! ```
//! use fastbuf_buflib::units::{Microns, Seconds};
//! use fastbuf_buflib::BufferLibrary;
//! use fastbuf_incremental::{Edit, IncrementalSolver};
//!
//! let lib = BufferLibrary::paper_synthetic(8)?;
//! let tree = fastbuf_netgen::RandomNetSpec { sinks: 24, seed: 7, ..Default::default() }.build();
//! let sink = tree.sinks().next().unwrap();
//!
//! let mut solver = IncrementalSolver::new(tree, lib);
//! let before = solver.solve(); // cold: computes and caches every subtree
//!
//! // STA tightened one sink's deadline; re-solve touches only its path.
//! solver.apply(&Edit::SetSinkRat { node: sink, rat: Seconds::from_pico(600.0) })?;
//! let after = solver.solve();
//! assert!(after.stats.nodes_recomputed < solver.tree().node_count() as u64);
//!
//! // Bit-identical to solving the edited tree from scratch:
//! let scratch = solver.solve_scratch();
//! assert_eq!(after.slack.value().to_bits(), scratch.slack.value().to_bits());
//! assert_eq!(after.placements, scratch.placements);
//! # let _ = before;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::error::Error;
use std::fmt;

use std::sync::Arc;

use fastbuf_buflib::units::Seconds;
use fastbuf_buflib::{BufferLibrary, LibraryError, Technology};
use fastbuf_core::{Solution, SolveWorkspace, Solver, SolverOptions, SubtreeCache};
use fastbuf_rctree::{NodeId, RoutingTree, SiteConstraint, TreeError, Wire};

pub use fastbuf_netgen::eco::{parse_edits, write_edits, Edit, EditScriptSpec};

/// Errors from applying an [`Edit`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum EcoError {
    /// The tree mutation was rejected (unknown node, not a sink, invalid
    /// value, site constraint on a non-internal node, …).
    Tree(TreeError),
    /// An [`Edit::SwapLibrary`] named a synthetic library that cannot be
    /// built.
    Library(LibraryError),
    /// A site-price update was rejected: the node does not exist, or the
    /// price is not a finite value `>= 0`.
    Price {
        /// The rejected node.
        node: NodeId,
        /// The rejected price in seconds.
        price: f64,
        /// Why it was rejected.
        reason: &'static str,
    },
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::Tree(e) => write!(f, "edit rejected: {e}"),
            EcoError::Library(e) => write!(f, "library swap rejected: {e}"),
            EcoError::Price {
                node,
                price,
                reason,
            } => write!(
                f,
                "site price {price} rejected at node {}: {reason}",
                node.index()
            ),
        }
    }
}

impl Error for EcoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EcoError::Tree(e) => Some(e),
            EcoError::Library(e) => Some(e),
            EcoError::Price { .. } => None,
        }
    }
}

impl From<TreeError> for EcoError {
    fn from(e: TreeError) -> Self {
        EcoError::Tree(e)
    }
}

impl From<LibraryError> for EcoError {
    fn from(e: LibraryError) -> Self {
        EcoError::Library(e)
    }
}

/// Bitwise equality of two price vectors, treating entries past either end
/// as zero (an empty vector and an all-zero vector price identically).
fn same_price_bits(a: &[f64], b: &[f64]) -> bool {
    (0..a.len().max(b.len())).all(|i| {
        a.get(i).copied().unwrap_or(0.0).to_bits() == b.get(i).copied().unwrap_or(0.0).to_bits()
    })
}

/// Bound on the cache-owned predecessor arena before the solver flushes
/// and rebases it. The arena is append-only while any cached list
/// references it, so long edit sequences grow it; a flush trades one full
/// re-solve for reclaiming the memory. Results are unaffected — a flush
/// only changes what gets recomputed.
const ARENA_ENTRY_LIMIT: usize = 1 << 21;

/// An owning incremental solver: one routing tree, one buffer library, one
/// persistent [`SubtreeCache`], kept consistent by construction.
///
/// Every mutation goes through [`IncrementalSolver::apply`] (or
/// [`IncrementalSolver::swap_library`] /
/// [`IncrementalSolver::set_options`]), which dirties exactly the affected
/// cache state — so [`IncrementalSolver::solve`] can never observe a tree
/// the cache doesn't know about. See the crate docs for the bit-identity
/// guarantee and the module docs of `fastbuf_core`'s `SubtreeCache` for
/// the invalidation invariants.
#[derive(Debug)]
pub struct IncrementalSolver {
    tree: RoutingTree,
    library: BufferLibrary,
    technology: Technology,
    options: SolverOptions,
    cache: SubtreeCache,
    workspace: SolveWorkspace,
    edits_applied: u64,
    /// Shadow of `options.site_prices` that [`IncrementalSolver::set_site_prices`]
    /// mutates in place; the `Arc` in the options is rebuilt once per batch.
    site_prices: Vec<f64>,
}

impl IncrementalSolver {
    /// Takes ownership of `tree` and `library` with default options and the
    /// default technology ([`Technology::tsmc180_like`], used only to turn
    /// [`Edit::SetWireLength`] microns into parasitics).
    pub fn new(tree: RoutingTree, library: BufferLibrary) -> Self {
        IncrementalSolver {
            tree,
            library,
            technology: Technology::tsmc180_like(),
            options: SolverOptions::default(),
            cache: SubtreeCache::new(),
            workspace: SolveWorkspace::new(),
            edits_applied: 0,
            site_prices: Vec::new(),
        }
    }

    /// Sets the technology wire-length edits are converted through.
    #[must_use]
    pub fn with_technology(mut self, technology: Technology) -> Self {
        self.technology = technology;
        self
    }

    /// Sets the solver options (algorithm, delay model, slew limit,
    /// tracking). Also available after construction via
    /// [`IncrementalSolver::set_options`].
    #[must_use]
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.set_options(options);
        self
    }

    /// The current (edited) tree.
    pub fn tree(&self) -> &RoutingTree {
        &self.tree
    }

    /// The current buffer library.
    pub fn library(&self) -> &BufferLibrary {
        &self.library
    }

    /// The current solver options.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// The cache, for diagnostics ([`SubtreeCache::cached_nodes`],
    /// [`SubtreeCache::arena_entries`], [`SubtreeCache::flush_count`]).
    pub fn cache(&self) -> &SubtreeCache {
        &self.cache
    }

    /// Number of edits applied so far.
    pub fn edits_applied(&self) -> u64 {
        self.edits_applied
    }

    /// Replaces the solver options. No explicit flush is needed for the
    /// fingerprinted knobs: the cache fingerprints the configuration and
    /// flushes itself on the next solve if anything solve-relevant changed
    /// (tested in this crate — a stale config reuse is structurally
    /// impossible). `site_prices` is *not* fingerprinted (see
    /// [`SolverOptions::site_prices`]), so if the new options carry
    /// different prices this method flushes the cache explicitly; prefer
    /// [`IncrementalSolver::set_site_prices`] for warm localized
    /// re-pricing.
    pub fn set_options(&mut self, options: SolverOptions) {
        let new_prices = options.site_prices.as_deref().unwrap_or(&[]);
        let changed = !same_price_bits(&self.site_prices, new_prices);
        self.site_prices = new_prices.to_vec();
        self.options = options;
        if changed {
            self.cache.flush();
        }
    }

    /// The current price charged for inserting a buffer at `node` (zero
    /// when unpriced).
    pub fn site_price(&self, node: NodeId) -> Seconds {
        Seconds::new(self.site_prices.get(node.index()).copied().unwrap_or(0.0))
    }

    /// Sets the buffer-usage price of one node; see
    /// [`IncrementalSolver::set_site_prices`].
    ///
    /// # Errors
    ///
    /// [`EcoError::Price`] for an unknown node or a non-finite / negative
    /// price.
    pub fn set_site_price(&mut self, node: NodeId, price: Seconds) -> Result<bool, EcoError> {
        self.set_site_prices(&[(node, price)]).map(|n| n > 0)
    }

    /// Updates the buffer-usage prices of a batch of nodes (the Lagrangian
    /// global loop's per-iteration re-pricing), returning how many actually
    /// changed. A price change is a localized edit exactly like
    /// [`Edit::DerateSite`]: only the changed nodes' root paths are
    /// dirtied, so the next [`IncrementalSolver::solve`] recomputes just
    /// those paths. Setting a node to its current price (bit-compared) is
    /// a no-op that dirties nothing.
    ///
    /// Prices on nodes that are not buffer sites are accepted and inert —
    /// the DP only charges prices where it can insert buffers.
    ///
    /// # Errors
    ///
    /// [`EcoError::Price`] if any node is unknown or any price is
    /// non-finite or negative; the batch is rejected atomically (no
    /// partial application).
    pub fn set_site_prices(&mut self, changes: &[(NodeId, Seconds)]) -> Result<usize, EcoError> {
        let n = self.tree.node_count();
        for &(node, price) in changes {
            if node.index() >= n {
                return Err(EcoError::Price {
                    node,
                    price: price.value(),
                    reason: "unknown node",
                });
            }
            if !(price.value().is_finite() && price.value() >= 0.0) {
                return Err(EcoError::Price {
                    node,
                    price: price.value(),
                    reason: "price must be finite and >= 0",
                });
            }
        }
        let mut changed = 0usize;
        for &(node, price) in changes {
            if self.site_prices.is_empty() && price.value() == 0.0 {
                continue; // still all-zero: nothing to materialize
            }
            if self.site_prices.is_empty() {
                self.site_prices.resize(n, 0.0);
            }
            let slot = &mut self.site_prices[node.index()];
            if slot.to_bits() == price.value().to_bits() {
                continue;
            }
            *slot = price.value();
            self.cache.mark_path_dirty(&self.tree, node);
            changed += 1;
        }
        if changed > 0 {
            self.options.site_prices = Some(Arc::from(self.site_prices.as_slice()));
        }
        Ok(changed)
    }

    /// Replaces the buffer library with an arbitrary one. This is the
    /// full-flush operation: every cached subtree depends on the library,
    /// so the cache is flushed immediately (the content fingerprint would
    /// catch it anyway; flushing here keeps the intent explicit).
    pub fn swap_library(&mut self, library: BufferLibrary) {
        self.library = library;
        self.cache.flush();
    }

    /// Applies one edit, dirtying exactly the root path the edit
    /// invalidates.
    ///
    /// * [`Edit::SetWireLength`] and [`Edit::SetWireRC`] dirty from the
    ///   **parent** of the edited wire's child endpoint: the child's own
    ///   subtree list is computed below the wire and stays valid.
    /// * Sink and site edits (including [`Edit::DerateSite`]) dirty from
    ///   the edited node itself.
    /// * [`Edit::SwapLibrary`] flushes everything (see
    ///   [`IncrementalSolver::swap_library`]).
    ///
    /// # Errors
    ///
    /// [`EcoError::Tree`] when the mutation is rejected (the tree and cache
    /// are left untouched); [`EcoError::Library`] for unbuildable library
    /// swaps.
    pub fn apply(&mut self, edit: &Edit) -> Result<(), EcoError> {
        match edit {
            Edit::SetWireLength { node, length } => {
                let wire = Wire::from_length(&self.technology, *length);
                self.tree.set_wire_to_parent(*node, wire)?;
                let parent = self
                    .tree
                    .parent(*node)
                    .expect("set_wire_to_parent verified a parent exists");
                self.cache.mark_path_dirty(&self.tree, parent);
            }
            Edit::SetWireRC {
                node,
                resistance,
                capacitance,
            } => {
                self.tree
                    .set_wire_to_parent(*node, Wire::new(*resistance, *capacitance))?;
                let parent = self
                    .tree
                    .parent(*node)
                    .expect("set_wire_to_parent verified a parent exists");
                self.cache.mark_path_dirty(&self.tree, parent);
            }
            Edit::DerateSite {
                node,
                delay_scale,
                drive_scale,
            } => {
                self.tree.set_site_variation(
                    *node,
                    fastbuf_rctree::SiteVariation::new(*delay_scale, *drive_scale),
                )?;
                self.cache.mark_path_dirty(&self.tree, *node);
            }
            Edit::SetSinkRat { node, rat } => {
                self.tree.set_sink_rat(*node, *rat)?;
                self.cache.mark_path_dirty(&self.tree, *node);
            }
            Edit::SetSinkCap { node, cap } => {
                self.tree.set_sink_cap(*node, *cap)?;
                self.cache.mark_path_dirty(&self.tree, *node);
            }
            Edit::BlockSite { node } => {
                self.tree
                    .set_site_constraint(*node, SiteConstraint::NotASite)?;
                self.cache.mark_path_dirty(&self.tree, *node);
            }
            Edit::UnblockSite { node } => {
                self.tree
                    .set_site_constraint(*node, SiteConstraint::AnyBuffer)?;
                self.cache.mark_path_dirty(&self.tree, *node);
            }
            Edit::SwapLibrary { size, jitter } => {
                let library = if *jitter == 0 {
                    BufferLibrary::paper_synthetic(*size)?
                } else {
                    BufferLibrary::paper_synthetic_jittered(*size, *jitter)?
                };
                self.swap_library(library);
            }
        }
        self.edits_applied += 1;
        Ok(())
    }

    /// Applies a whole script in order, stopping at the first rejected
    /// edit.
    ///
    /// # Errors
    ///
    /// The first edit's [`EcoError`], with all earlier edits applied.
    pub fn apply_all(&mut self, edits: &[Edit]) -> Result<(), EcoError> {
        for edit in edits {
            self.apply(edit)?;
        }
        Ok(())
    }

    /// Re-solves the current tree incrementally: dirty subtrees are
    /// recomputed, clean ones reused from the cache. Bit-identical to
    /// [`IncrementalSolver::solve_scratch`];
    /// [`SolveStats::nodes_recomputed`](fastbuf_core::SolveStats) /
    /// `nodes_reused` report how much work the cache saved.
    pub fn solve(&mut self) -> Solution {
        if self.cache.arena_entries() > ARENA_ENTRY_LIMIT {
            // Rebase the append-only arena; purely a memory/perf trade.
            self.cache.flush();
        }
        Solver::new(&self.tree, &self.library)
            .with_options(self.options.clone())
            .solve_cached(&mut self.workspace, &mut self.cache)
    }

    /// Solves the current tree from scratch, bypassing (and not touching)
    /// the cache — the differential oracle the equivalence tests and the
    /// `eco_speedup` benchmark compare against.
    pub fn solve_scratch(&self) -> Solution {
        Solver::new(&self.tree, &self.library)
            .with_options(self.options.clone())
            .solve()
    }

    /// Drops all cached state; the next [`IncrementalSolver::solve`] runs
    /// cold. Results are unaffected.
    pub fn flush(&mut self) {
        self.cache.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::units::{Farads, Microns, Seconds};
    use fastbuf_core::Algorithm;
    use fastbuf_netgen::RandomNetSpec;
    use fastbuf_rctree::NodeId;
    use std::sync::Arc;

    fn net(sinks: usize, seed: u64) -> RoutingTree {
        RandomNetSpec {
            sinks,
            seed,
            ..RandomNetSpec::default()
        }
        .build()
    }

    fn lib8() -> BufferLibrary {
        BufferLibrary::paper_synthetic(8).unwrap()
    }

    fn assert_identical(a: &Solution, b: &Solution) {
        assert_eq!(a.slack.value().to_bits(), b.slack.value().to_bits());
        assert_eq!(a.root_q.value().to_bits(), b.root_q.value().to_bits());
        assert_eq!(a.root_load.value().to_bits(), b.root_load.value().to_bits());
        assert_eq!(a.root_slew.value().to_bits(), b.root_slew.value().to_bits());
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.slew_ok, b.slew_ok);
    }

    #[test]
    fn edit_script_stays_bit_identical_to_scratch() {
        let mut solver = IncrementalSolver::new(net(20, 3), lib8());
        assert_identical(&solver.solve(), &solver.solve_scratch());
        let script = EditScriptSpec {
            edits: 30,
            locality: 0.4,
            seed: 5,
            swap_library_every: 9,
        }
        .generate(solver.tree());
        for (i, edit) in script.iter().enumerate() {
            solver
                .apply(edit)
                .unwrap_or_else(|e| panic!("edit {i}: {e}"));
            let inc = solver.solve();
            let scratch = solver.solve_scratch();
            assert_identical(&inc, &scratch);
        }
        assert_eq!(solver.edits_applied(), script.len() as u64);
    }

    #[test]
    fn swap_library_flushes_and_recomputes_everything() {
        let mut solver = IncrementalSolver::new(net(16, 4), lib8());
        let n = solver.tree().node_count() as u64;
        let _ = solver.solve();
        let flushes = solver.cache().flush_count();

        // An arbitrary-library swap flushes immediately...
        solver.swap_library(BufferLibrary::paper_synthetic_jittered(8, 42).unwrap());
        assert!(solver.cache().flush_count() > flushes);
        // ...and the next solve recomputes every node yet matches scratch.
        let inc = solver.solve();
        assert_eq!(inc.stats.nodes_recomputed, n);
        assert_eq!(inc.stats.nodes_reused, 0);
        assert_identical(&inc, &solver.solve_scratch());

        // The script-level SwapLibrary edit does the same.
        solver
            .apply(&Edit::SwapLibrary { size: 4, jitter: 0 })
            .unwrap();
        let inc = solver.solve();
        assert_eq!(inc.stats.nodes_recomputed, n);
        assert_eq!(solver.library().len(), 4);
        assert_identical(&inc, &solver.solve_scratch());

        // An unbuildable swap is a typed error and changes nothing.
        let before = solver.library().len();
        let err = solver
            .apply(&Edit::SwapLibrary { size: 0, jitter: 0 })
            .unwrap_err();
        assert!(matches!(err, EcoError::Library(_)), "{err}");
        assert_eq!(solver.library().len(), before);
    }

    /// The scariest silent-wrong-answer bug is a stale-fingerprint reuse:
    /// a config change that *doesn't* flush. Interleave two configurations
    /// through one solver and demand a full recompute (and scratch
    /// equality) on every switch.
    #[test]
    fn interleaved_configs_flush_instead_of_reusing_stale_lists() {
        let mut solver = IncrementalSolver::new(net(14, 9), lib8());
        let n = solver.tree().node_count() as u64;
        let plain = SolverOptions::default();
        let mut limited = SolverOptions::default();
        limited.slew_limit = Some(Seconds::from_pico(280.0));

        let _ = solver.solve();
        for round in 0..3 {
            solver.set_options(limited.clone());
            let a = solver.solve();
            assert_eq!(a.stats.nodes_recomputed, n, "round {round}: limited");
            assert_identical(&a, &solver.solve_scratch());

            solver.set_options(plain.clone());
            let b = solver.solve();
            assert_eq!(b.stats.nodes_recomputed, n, "round {round}: plain");
            assert_identical(&b, &solver.solve_scratch());
        }

        // Same story for model and algorithm changes.
        let mut scaled = SolverOptions::default();
        scaled.delay_model = Arc::new(fastbuf_rctree::ScaledElmoreModel::default());
        solver.set_options(scaled);
        let c = solver.solve();
        assert_eq!(c.stats.nodes_recomputed, n);
        assert_identical(&c, &solver.solve_scratch());

        let mut lillis = SolverOptions::default();
        lillis.algorithm = Algorithm::Lillis;
        solver.set_options(lillis);
        let d = solver.solve();
        assert_eq!(d.stats.nodes_recomputed, n);
        assert_identical(&d, &solver.solve_scratch());
    }

    #[test]
    fn unchanged_options_do_not_flush() {
        let mut solver = IncrementalSolver::new(net(10, 2), lib8());
        let _ = solver.solve();
        // set_options with an *equivalent* configuration (fresh Arc to the
        // same model type) keeps the cache warm: model identity is by
        // content fingerprint, not allocation.
        solver.set_options(SolverOptions::default());
        let warm = solver.solve();
        assert_eq!(warm.stats.nodes_recomputed, 0);
        assert_eq!(warm.stats.nodes_reused, solver.tree().node_count() as u64);
    }

    #[test]
    fn rejected_edits_leave_tree_and_cache_consistent() {
        let mut solver = IncrementalSolver::new(net(8, 6), lib8());
        let baseline = solver.solve();
        let ghost = NodeId::new(10_000);
        assert!(matches!(
            solver.apply(&Edit::SetSinkRat {
                node: ghost,
                rat: Seconds::from_pico(100.0)
            }),
            Err(EcoError::Tree(TreeError::UnknownNode { .. }))
        ));
        assert!(matches!(
            solver.apply(&Edit::BlockSite {
                node: solver.tree().root()
            }),
            // Blocking the source clears an already-clear constraint: ok.
            Ok(())
        ));
        assert!(matches!(
            solver.apply(&Edit::SetSinkCap {
                node: solver.tree().root(),
                cap: Farads::from_femto(1.0)
            }),
            Err(EcoError::Tree(TreeError::NotASink { .. }))
        ));
        assert_eq!(solver.edits_applied(), 1); // only the no-op block landed
        let after = solver.solve();
        assert_identical(&baseline, &after);
        assert_identical(&after, &solver.solve_scratch());
    }

    #[test]
    fn wire_edit_dirties_from_the_parent_only() {
        // src -> tee -> {site -> s1, s2}: editing the wire *above* s1
        // keeps s1's (singleton) list cached but recomputes its ancestors.
        let mut solver = IncrementalSolver::new(net(24, 8), lib8());
        let _ = solver.solve();
        let sink = solver.tree().sinks().last().unwrap();
        solver
            .apply(&Edit::SetWireLength {
                node: sink,
                length: Microns::new(77.0),
            })
            .unwrap();
        let inc = solver.solve();
        assert!(inc.stats.nodes_recomputed >= 1);
        assert!(
            inc.stats.nodes_recomputed < solver.tree().node_count() as u64,
            "wire edit above a leaf must not recompute the whole tree"
        );
        assert_identical(&inc, &solver.solve_scratch());
    }

    #[test]
    fn slew_constrained_eco_matches_scratch() {
        let mut options = SolverOptions::default();
        options.slew_limit = Some(Seconds::from_pico(250.0));
        let mut solver = IncrementalSolver::new(net(18, 12), lib8()).with_options(options);
        let _ = solver.solve();
        let script = EditScriptSpec {
            edits: 15,
            locality: 0.3,
            seed: 2,
            swap_library_every: 0,
        }
        .generate(solver.tree());
        for edit in &script {
            solver.apply(edit).unwrap();
            assert_identical(&solver.solve(), &solver.solve_scratch());
        }
    }

    #[test]
    fn technology_override_feeds_wire_edits() {
        let tech = Technology::new(
            fastbuf_buflib::units::Ohms::new(0.5),
            Farads::from_femto(0.3),
        );
        let mut solver = IncrementalSolver::new(net(6, 1), lib8()).with_technology(tech);
        let sink = solver.tree().sinks().next().unwrap();
        solver
            .apply(&Edit::SetWireLength {
                node: sink,
                length: Microns::new(100.0),
            })
            .unwrap();
        let wire = solver.tree().wire_to_parent(sink).unwrap();
        let (r, c) = tech.wire(Microns::new(100.0));
        assert_eq!(wire.resistance(), r);
        assert_eq!(wire.capacitance(), c);
        assert_identical(&solver.solve(), &solver.solve_scratch());
    }

    #[test]
    fn variation_edits_stay_bit_identical_and_dirty_only_their_paths() {
        use fastbuf_buflib::units::Ohms;
        let mut solver = IncrementalSolver::new(net(30, 11), lib8());
        let _ = solver.solve();
        let n = solver.tree().node_count() as u64;

        // A wire-RC rewrite above a leaf keeps the leaf's list cached.
        let sink = solver.tree().sinks().last().unwrap();
        solver
            .apply(&Edit::SetWireRC {
                node: sink,
                resistance: Ohms::new(81.25),
                capacitance: Farads::from_femto(130.5),
            })
            .unwrap();
        let inc = solver.solve();
        assert!(inc.stats.nodes_recomputed < n);
        assert_identical(&inc, &solver.solve_scratch());

        // A site derate recomputes its root path only, and 1.0/1.0 restores
        // the nominal solution bit-for-bit.
        let site = solver
            .tree()
            .node_ids()
            .find(|&v| solver.tree().kind(v).is_internal() && solver.tree().parent(v).is_some())
            .unwrap();
        let before = solver.solve();
        solver
            .apply(&Edit::DerateSite {
                node: site,
                delay_scale: 1.2,
                drive_scale: 0.9,
            })
            .unwrap();
        let derated = solver.solve();
        assert!(derated.stats.nodes_recomputed < n);
        assert_identical(&derated, &solver.solve_scratch());
        solver
            .apply(&Edit::DerateSite {
                node: site,
                delay_scale: 1.0,
                drive_scale: 1.0,
            })
            .unwrap();
        let restored = solver.solve();
        assert_identical(&restored, &before);

        // Invalid derates are typed rejections, not panics.
        let err = solver
            .apply(&Edit::DerateSite {
                node: site,
                delay_scale: f64::NAN,
                drive_scale: 1.0,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            EcoError::Tree(TreeError::InvalidVariation { .. })
        ));
    }

    #[test]
    fn price_edits_stay_bit_identical_and_dirty_only_their_paths() {
        let mut solver = IncrementalSolver::new(net(30, 21), lib8());
        let _ = solver.solve();
        let n = solver.tree().node_count() as u64;
        let sites: Vec<NodeId> = solver.tree().buffer_sites().collect();
        assert!(sites.len() >= 2, "need sites to price");

        // Pricing one deep site recomputes its root path only, and the
        // result matches a scratch solve under the same options.
        let deep = *sites.last().unwrap();
        assert!(solver
            .set_site_price(deep, Seconds::from_pico(300.0))
            .unwrap());
        assert_eq!(solver.site_price(deep), Seconds::from_pico(300.0));
        let inc = solver.solve();
        assert!(inc.stats.nodes_recomputed >= 1);
        assert!(
            inc.stats.nodes_recomputed < n,
            "a single price change must not recompute the whole tree"
        );
        assert_identical(&inc, &solver.solve_scratch());

        // Re-setting the same price (bitwise) dirties nothing.
        assert!(!solver
            .set_site_price(deep, Seconds::from_pico(300.0))
            .unwrap());
        let warm = solver.solve();
        assert_eq!(warm.stats.nodes_recomputed, 0);

        // A large-enough price evicts the buffer from the priced site.
        assert!(solver.set_site_price(deep, Seconds::new(1.0)).unwrap());
        let evicted = solver.solve();
        assert!(evicted.placements.iter().all(|p| p.node != deep));
        assert_identical(&evicted, &solver.solve_scratch());

        // Restoring zero restores the unpriced solution bit-for-bit.
        let mut baseline = IncrementalSolver::new(solver.tree().clone(), lib8());
        assert!(solver.set_site_price(deep, Seconds::ZERO).unwrap());
        assert_identical(&solver.solve(), &baseline.solve());
    }

    #[test]
    fn price_batches_are_rejected_atomically() {
        let mut solver = IncrementalSolver::new(net(12, 5), lib8());
        let site = solver.tree().buffer_sites().next().unwrap();
        let ghost = NodeId::new(10_000);

        let err = solver
            .set_site_prices(&[
                (site, Seconds::from_pico(100.0)),
                (ghost, Seconds::from_pico(50.0)),
            ])
            .unwrap_err();
        assert!(
            matches!(err, EcoError::Price { node, .. } if node == ghost),
            "{err}"
        );
        // The valid first entry must not have been applied.
        assert_eq!(solver.site_price(site), Seconds::ZERO);

        // NaN cannot even be constructed (`Seconds::new` rejects it); the
        // remaining invalid values are typed rejections here.
        for bad in [f64::INFINITY, -1.0] {
            let err = solver
                .set_site_prices(&[(site, Seconds::new(bad))])
                .unwrap_err();
            assert!(matches!(err, EcoError::Price { .. }), "{bad}: {err}");
            assert!(err.to_string().contains("rejected"));
        }
    }

    /// `set_options` cannot silently reuse stale lists across a price
    /// change: prices are excluded from the fingerprint, so the solver
    /// flushes explicitly when they differ.
    #[test]
    fn set_options_with_different_prices_flushes() {
        let mut solver = IncrementalSolver::new(net(14, 7), lib8());
        let _ = solver.solve();
        let n = solver.tree().node_count() as u64;

        let mut priced = SolverOptions::default();
        priced.site_prices = Some(vec![1e-10; solver.tree().node_count()].into());
        solver.set_options(priced.clone());
        let a = solver.solve();
        assert_eq!(a.stats.nodes_recomputed, n);
        assert_identical(&a, &solver.solve_scratch());

        // Same prices again: warm.
        solver.set_options(priced);
        let warm = solver.solve();
        assert_eq!(warm.stats.nodes_recomputed, 0);

        // Back to unpriced: flushes again.
        solver.set_options(SolverOptions::default());
        let b = solver.solve();
        assert_eq!(b.stats.nodes_recomputed, n);
        assert_identical(&b, &solver.solve_scratch());
    }

    #[test]
    fn eco_error_display_and_source() {
        let e = EcoError::Tree(TreeError::NoSinks);
        assert!(e.to_string().contains("edit rejected"));
        assert!(e.source().is_some());
        let e: EcoError = TreeError::NoSinks.into();
        assert!(matches!(e, EcoError::Tree(_)));
    }
}
