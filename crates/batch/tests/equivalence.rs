//! Batch-vs-sequential equivalence and cross-worker-count determinism.
//!
//! These are the contract tests of the batch subsystem: fanning nets over
//! a worker pool (with per-worker reusable workspaces) must change *only*
//! the wall time, never a single bit of any result.

use fastbuf_batch::{BatchReport, BatchSolver};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Algorithm, Solver};
use fastbuf_netgen::SuiteSpec;
use fastbuf_rctree::RoutingTree;

fn suite(nets: usize, seed: u64) -> Vec<RoutingTree> {
    SuiteSpec {
        nets,
        seed,
        max_sinks: 96,
        ..SuiteSpec::default()
    }
    .build()
}

fn assert_reports_identical(a: &BatchReport, b: &BatchReport) {
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.index, y.index);
        assert_eq!(x.slack, y.slack, "net {}", x.index);
        assert_eq!(x.slack_before, y.slack_before, "net {}", x.index);
        assert_eq!(x.placements, y.placements, "net {}", x.index);
        assert_eq!(x.cost, y.cost, "net {}", x.index);
        assert_eq!(x.slew_before, y.slew_before, "net {}", x.index);
        assert_eq!(x.max_slew, y.max_slew, "net {}", x.index);
        assert_eq!(x.slew_ok, y.slew_ok, "net {}", x.index);
    }
    assert_eq!(a.wns_after, b.wns_after);
    assert_eq!(a.tns_after, b.tns_after);
    assert_eq!(a.total_buffers, b.total_buffers);
    assert_eq!(a.worst_slew, b.worst_slew);
    assert_eq!(a.slew_violations, b.slew_violations);
}

#[test]
fn batch_matches_sequential_single_net_solves() {
    let nets = suite(30, 1);
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let report = BatchSolver::new(&nets, &lib).workers(4).solve();
    assert_eq!(report.outcomes.len(), nets.len());
    for (i, outcome) in report.outcomes.iter().enumerate() {
        assert_eq!(outcome.index, i, "outcomes must be in input order");
        let solo = Solver::new(&nets[i], &lib).solve();
        assert_eq!(outcome.slack, solo.slack, "net {i}");
        assert_eq!(outcome.placements, solo.placements, "net {i}");
        assert_eq!(outcome.cost, solo.total_cost(&lib), "net {i}");
        // And every reconstruction survives the independent Elmore check.
        solo.verify(&nets[i], &lib).unwrap();
    }
}

#[test]
fn worker_count_does_not_change_results() {
    let nets = suite(24, 9);
    let lib = BufferLibrary::paper_synthetic(16).unwrap();
    let base = BatchSolver::new(&nets, &lib).workers(1).solve();
    assert_eq!(base.workers, 1);
    for workers in [2usize, 3, 4, 8] {
        let parallel = BatchSolver::new(&nets, &lib).workers(workers).solve();
        assert!(parallel.workers >= 1 && parallel.workers <= workers);
        assert_reports_identical(&base, &parallel);
    }
}

#[test]
fn all_algorithms_run_through_the_batch_path() {
    let nets = suite(10, 3);
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let exact = BatchSolver::new(&nets, &lib)
        .algorithm(Algorithm::Lillis)
        .workers(2)
        .solve();
    let fast = BatchSolver::new(&nets, &lib)
        .algorithm(Algorithm::LiShi)
        .workers(2)
        .solve();
    for (a, b) in exact.outcomes.iter().zip(&fast.outcomes) {
        assert!(
            (a.slack.picos() - b.slack.picos()).abs() < 1e-6,
            "net {}: exact algorithms disagree",
            a.index
        );
    }
    // The published permanent pruning may lose slack but must never win.
    let permanent = BatchSolver::new(&nets, &lib)
        .algorithm(Algorithm::LiShiPermanent)
        .workers(2)
        .solve();
    for (a, p) in exact.outcomes.iter().zip(&permanent.outcomes) {
        assert!(p.slack.picos() <= a.slack.picos() + 1e-6, "net {}", a.index);
    }
}

#[test]
fn untracked_batch_skips_placements_but_keeps_slacks() {
    let nets = suite(8, 5);
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let tracked = BatchSolver::new(&nets, &lib).workers(2).solve();
    let untracked = BatchSolver::new(&nets, &lib)
        .workers(2)
        .track_predecessors(false)
        .solve();
    for (t, u) in tracked.outcomes.iter().zip(&untracked.outcomes) {
        assert_eq!(t.slack, u.slack);
        assert!(u.placements.is_empty());
    }
    assert_eq!(untracked.total_buffers, 0);
}

#[test]
fn report_json_is_wellformed_and_ordered() {
    let nets = suite(5, 2);
    let lib = BufferLibrary::paper_synthetic(4).unwrap();
    let report = BatchSolver::new(&nets, &lib).workers(2).solve();
    let names: Vec<String> = (0..nets.len())
        .map(|i| format!("suite/{i:03}.net"))
        .collect();
    let json = report.to_json(Some(&names), true);
    assert!(json.contains("\"nets\": 5"));
    assert!(json.contains("\"net\": \"suite/000.net\""));
    assert!(json.contains("\"placements\": ["));
    // Balanced braces/brackets (cheap well-formedness check; the format is
    // flat enough that counting suffices).
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced braces"
    );
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    // Results appear in input order.
    let pos: Vec<usize> = (0..5)
        .map(|i| json.find(&format!("\"index\": {i},")).unwrap())
        .collect();
    assert!(pos.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn single_net_batch_works() {
    let nets = suite(1, 77);
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let report = BatchSolver::new(&nets, &lib).workers(8).solve();
    assert_eq!(report.workers, 1, "workers are capped at the net count");
    assert_eq!(report.outcomes.len(), 1);
}

#[test]
fn empty_batch_is_empty_report() {
    let nets: Vec<RoutingTree> = Vec::new();
    let lib = BufferLibrary::paper_synthetic(4).unwrap();
    let report = BatchSolver::new(&nets, &lib).solve();
    assert!(report.outcomes.is_empty());
    assert_eq!(report.total_buffers, 0);
}

#[test]
fn slew_constrained_batch_matches_sequential_and_reports_slews() {
    use fastbuf_buflib::units::Seconds;
    let nets = suite(16, 4);
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let limit = Seconds::from_pico(250.0);
    let report = BatchSolver::new(&nets, &lib)
        .workers(3)
        .slew_limit(limit)
        .solve();
    assert_eq!(report.slew_limit, Some(limit));
    assert_eq!(report.delay_model, "elmore");
    for (i, o) in report.outcomes.iter().enumerate() {
        let solo = Solver::new(&nets[i], &lib).slew_limit(limit).solve();
        assert_eq!(o.slack, solo.slack, "net {i}");
        assert_eq!(o.placements, solo.placements, "net {i}");
        assert_eq!(o.slew_ok, solo.slew_ok, "net {i}");
        // The reported slew is the forward-evaluated ground truth and must
        // honour the limit whenever the net is feasible.
        if o.slew_ok {
            assert!(
                o.max_slew.value() <= limit.value() * (1.0 + 1e-9),
                "net {i}: {} over {}",
                o.max_slew,
                limit
            );
        }
        assert!(o.slew_before >= Seconds::ZERO);
    }
    assert_eq!(
        report.slew_violations,
        report.outcomes.iter().filter(|o| !o.slew_ok).count()
    );
    // The JSON report carries the slew columns.
    let json = report.to_json(None, false);
    for key in [
        "\"slew_limit_ps\"",
        "\"worst_slew_ps\"",
        "\"slew_violations\"",
        "\"max_slew_ps\"",
        "\"slew_ok\"",
        "\"delay_model\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn scaled_model_batch_is_deterministic_across_workers() {
    use fastbuf_core::ScaledElmoreModel;
    use std::sync::Arc;
    let nets = suite(12, 8);
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let mk = |workers| {
        BatchSolver::new(&nets, &lib)
            .workers(workers)
            .delay_model(Arc::new(ScaledElmoreModel::default()))
            .solve()
    };
    let a = mk(1);
    let b = mk(4);
    assert_eq!(a.delay_model, "scaled-elmore");
    assert_reports_identical(&a, &b);
}

/// Regression: a pathological (non-positive) slew limit must keep the
/// legacy best-effort contract through the api-routed path — every net
/// reports `slew_ok = false`, nothing panics, and the sequential solver
/// agrees bit for bit.
#[test]
fn non_positive_slew_limit_is_best_effort_not_a_panic() {
    use fastbuf_buflib::units::Seconds;
    let nets = suite(6, 5);
    let lib = BufferLibrary::paper_synthetic(4).unwrap();
    let limit = Seconds::from_pico(-1.0);
    let report = BatchSolver::new(&nets, &lib)
        .workers(2)
        .slew_limit(limit)
        .solve();
    assert_eq!(report.slew_violations, nets.len());
    for o in &report.outcomes {
        assert!(!o.slew_ok);
        let solo = Solver::new(&nets[o.index], &lib).slew_limit(limit).solve();
        assert_eq!(o.slack, solo.slack);
        assert_eq!(o.placements, solo.placements);
    }
}
