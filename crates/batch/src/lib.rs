//! Parallel batch solving — fleets of nets through the O(bn²) kernel.
//!
//! The paper's algorithm is a *per-net* kernel, but real flows dispatch it
//! over thousands of nets per pass (buffered global routing, design-wide
//! repeater insertion). This crate is that throughput layer:
//!
//! * [`BatchSolver`] — takes many [`RoutingTree`](fastbuf_rctree::RoutingTree)s
//!   plus one shared [`BufferLibrary`](fastbuf_buflib::BufferLibrary) and
//!   fans them out across a worker pool. Work is dispatched **largest net
//!   first** through a multi-consumer channel, so big nets cannot straggle
//!   at the tail of the batch;
//! * per-worker reusable [`SolveWorkspace`](fastbuf_core::SolveWorkspace)s
//!   eliminate per-net allocation churn in the hot loop — after warm-up a
//!   worker solves nets with no steady-state heap traffic;
//! * [`BatchReport`] — per-net outcomes in input order plus batch
//!   aggregates (WNS/TNS, buffer count, cost, nets/sec), serializable to
//!   JSON for the CLI and the `batch_throughput` bench.
//!
//! **Determinism:** nets are independent sub-problems, so the report is
//! bit-identical for every worker count — only the wall time changes. The
//! integration tests assert both batch-vs-sequential equivalence and
//! cross-worker-count determinism.
//!
//! # Quick start
//!
//! ```
//! use fastbuf_batch::BatchSolver;
//! use fastbuf_buflib::BufferLibrary;
//! use fastbuf_core::{Algorithm, Solver};
//! use fastbuf_netgen::SuiteSpec;
//!
//! // A reproducible 16-net suite with a realistic heavy-tailed size mix.
//! let nets = SuiteSpec { nets: 16, seed: 42, ..SuiteSpec::default() }.build();
//! let lib = BufferLibrary::paper_synthetic(8)?;
//!
//! let report = BatchSolver::new(&nets, &lib)
//!     .algorithm(Algorithm::LiShi)
//!     .workers(4)
//!     .solve();
//!
//! // Per-net results are identical to sequential single-net solves:
//! for outcome in &report.outcomes {
//!     let solo = Solver::new(&nets[outcome.index], &lib).solve();
//!     assert_eq!(outcome.slack, solo.slack);
//!     assert_eq!(outcome.placements, solo.placements);
//! }
//! println!("{report}");
//! # Ok::<(), fastbuf_buflib::LibraryError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod report;
mod solver;

pub use report::{BatchReport, NetOutcome};
pub use solver::{BatchOptions, BatchSolver};
