//! Batch results: per-net outcomes, aggregates, and JSON serialization.

use std::fmt;
use std::time::Duration;

use fastbuf_api::json::{json_f64, json_str, NetRecord};
use fastbuf_buflib::units::Seconds;
use fastbuf_core::{Algorithm, Placement, SolveStats};

/// The outcome of solving one net of a batch.
#[derive(Clone, Debug)]
pub struct NetOutcome {
    /// Position of the net in the input slice (results are always reported
    /// in input order, whatever order the workers finished in).
    pub index: usize,
    /// Sink count of the net.
    pub sinks: usize,
    /// Candidate buffer positions of the net.
    pub sites: usize,
    /// Slack before any buffering (forward Elmore evaluation).
    pub slack_before: Seconds,
    /// Optimal slack after buffering.
    pub slack: Seconds,
    /// Worst forward-propagated output slew before buffering.
    pub slew_before: Seconds,
    /// Worst forward-propagated output slew of the solved net (the DP's
    /// root-stage slew when predecessor tracking was off).
    pub max_slew: Seconds,
    /// `false` when a slew limit was set and this net could not meet it.
    pub slew_ok: bool,
    /// The buffers to insert (empty when predecessor tracking was off).
    pub placements: Vec<Placement>,
    /// Total cost of the inserted buffers.
    pub cost: f64,
    /// DP work counters for this net.
    pub stats: SolveStats,
    /// Wall-clock solve time for this net (including the unbuffered
    /// evaluation).
    pub elapsed: Duration,
}

/// Aggregated outcome of a [`BatchSolver::solve`](crate::BatchSolver::solve)
/// run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-net outcomes, in input order.
    pub outcomes: Vec<NetOutcome>,
    /// The algorithm every net was solved with.
    pub algorithm: Algorithm,
    /// Worker threads actually used.
    pub workers: usize,
    /// Name of the delay model every net was solved with.
    pub delay_model: &'static str,
    /// The per-net slew limit in force (`None` = unconstrained).
    pub slew_limit: Option<Seconds>,
    /// Worst [`NetOutcome::max_slew`] across the batch.
    pub worst_slew: Seconds,
    /// Number of nets that could not meet the slew limit.
    pub slew_violations: usize,
    /// Worst net slack before buffering.
    pub wns_before: Seconds,
    /// Worst net slack after buffering.
    pub wns_after: Seconds,
    /// Total negative slack (`Σ min(slack, 0)`) before buffering.
    pub tns_before: Seconds,
    /// Total negative slack after buffering.
    pub tns_after: Seconds,
    /// Buffers inserted across the batch.
    pub total_buffers: usize,
    /// Total buffer cost across the batch.
    pub total_cost: f64,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchReport {
    /// Aggregates `outcomes` (already in input order) into a report.
    pub(crate) fn from_outcomes(
        outcomes: Vec<NetOutcome>,
        algorithm: Algorithm,
        workers: usize,
        delay_model: &'static str,
        slew_limit: Option<Seconds>,
        elapsed: Duration,
    ) -> Self {
        let mut report = BatchReport {
            outcomes,
            algorithm,
            workers,
            delay_model,
            slew_limit,
            worst_slew: Seconds::ZERO,
            slew_violations: 0,
            wns_before: Seconds::new(f64::INFINITY),
            wns_after: Seconds::new(f64::INFINITY),
            tns_before: Seconds::ZERO,
            tns_after: Seconds::ZERO,
            total_buffers: 0,
            total_cost: 0.0,
            elapsed,
        };
        for o in &report.outcomes {
            report.wns_before = report.wns_before.min(o.slack_before);
            report.wns_after = report.wns_after.min(o.slack);
            report.tns_before += o.slack_before.min(Seconds::ZERO);
            report.tns_after += o.slack.min(Seconds::ZERO);
            report.total_buffers += o.placements.len();
            report.total_cost += o.cost;
            report.worst_slew = report.worst_slew.max(o.max_slew);
            report.slew_violations += usize::from(!o.slew_ok);
        }
        report
    }

    /// Nets solved per wall-clock second — the batch throughput metric the
    /// `batch_throughput` bench records.
    pub fn nets_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Serializes the report as JSON: batch aggregates plus one entry per
    /// net. `names` labels the nets (falling back to `net<index>`);
    /// `include_placements` adds the full placement list per net.
    ///
    /// Per-net entries use the shared [`NetRecord`] schema from
    /// `fastbuf_api::json` — the same serializer `fastbuf solve --json`
    /// emits, so the two commands' per-net JSON can never drift apart. The
    /// encoder is hand-rolled (the workspace builds offline, without
    /// serde); all emitted strings are escaped, all numbers are plain JSON
    /// numbers.
    pub fn to_json(&self, names: Option<&[String]>, include_placements: bool) -> String {
        let mut s = String::with_capacity(256 + self.outcomes.len() * 160);
        s.push_str("{\n");
        s.push_str(&format!("  \"nets\": {},\n", self.outcomes.len()));
        s.push_str(&format!(
            "  \"algorithm\": {},\n",
            json_str(self.algorithm.name())
        ));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!(
            "  \"delay_model\": {},\n",
            json_str(self.delay_model)
        ));
        s.push_str(&format!(
            "  \"slew_limit_ps\": {},\n",
            self.slew_limit
                .map_or("null".to_owned(), |l| json_f64(l.picos()))
        ));
        s.push_str(&format!(
            "  \"worst_slew_ps\": {},\n",
            json_f64(self.worst_slew.picos())
        ));
        s.push_str(&format!(
            "  \"slew_violations\": {},\n",
            self.slew_violations
        ));
        s.push_str(&format!(
            "  \"elapsed_ms\": {},\n",
            json_f64(self.elapsed.as_secs_f64() * 1e3)
        ));
        s.push_str(&format!(
            "  \"nets_per_sec\": {},\n",
            json_f64(self.nets_per_sec())
        ));
        s.push_str(&format!(
            "  \"wns_before_ps\": {},\n",
            json_f64(self.wns_before.picos())
        ));
        s.push_str(&format!(
            "  \"wns_after_ps\": {},\n",
            json_f64(self.wns_after.picos())
        ));
        s.push_str(&format!(
            "  \"tns_before_ps\": {},\n",
            json_f64(self.tns_before.picos())
        ));
        s.push_str(&format!(
            "  \"tns_after_ps\": {},\n",
            json_f64(self.tns_after.picos())
        ));
        s.push_str(&format!("  \"total_buffers\": {},\n", self.total_buffers));
        s.push_str(&format!(
            "  \"total_cost\": {},\n",
            json_f64(self.total_cost)
        ));
        s.push_str("  \"results\": [\n");
        for (k, o) in self.outcomes.iter().enumerate() {
            let fallback;
            let name = match names.and_then(|n| n.get(o.index)) {
                Some(n) => n.as_str(),
                None => {
                    fallback = format!("net{:05}", o.index);
                    fallback.as_str()
                }
            };
            let record = NetRecord {
                name,
                index: o.index,
                scenario: None,
                sinks: o.sinks,
                sites: o.sites,
                slack_before: o.slack_before,
                slack_after: o.slack,
                slew_before: o.slew_before,
                max_slew: o.max_slew,
                slew_ok: o.slew_ok,
                buffers: o.placements.len(),
                cost: o.cost,
                elapsed: o.elapsed,
                placements: include_placements.then_some(o.placements.as_slice()),
            };
            s.push_str("    ");
            s.push_str(&record.to_json());
            if k + 1 < self.outcomes.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nets on {} workers in {:.1} ms ({:.0} nets/s): WNS {} -> {}, {} buffers (cost {:.0}), worst slew {}{}",
            self.outcomes.len(),
            self.workers,
            self.elapsed.as_secs_f64() * 1e3,
            self.nets_per_sec(),
            self.wns_before,
            self.wns_after,
            self.total_buffers,
            self.total_cost,
            self.worst_slew,
            match self.slew_limit {
                Some(l) if self.slew_violations > 0 =>
                    format!(" ({} nets over the {} limit)", self.slew_violations, l),
                Some(l) => format!(" (all within the {} limit)", l),
                None => String::new(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_aggregates() {
        let r = BatchReport::from_outcomes(
            Vec::new(),
            Algorithm::LiShi,
            1,
            "elmore",
            None,
            Duration::ZERO,
        );
        assert_eq!(r.total_buffers, 0);
        assert_eq!(r.outcomes.len(), 0);
        let json = r.to_json(None, false);
        assert!(json.contains("\"nets\": 0"));
        assert!(json.contains("\"results\": ["));
    }
}
