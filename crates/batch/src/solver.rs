//! The worker-pool batch solver.

use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;

use fastbuf_api::{Scenario, ScenarioResult, Session};
use fastbuf_buflib::units::Seconds;
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Algorithm, DelayModel, ElmoreModel, SolveWorkspace};
use fastbuf_rctree::{elmore, RoutingTree};

use crate::report::{BatchReport, NetOutcome};

/// Configuration of a [`BatchSolver`].
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// The per-net algorithm (default [`Algorithm::LiShi`]).
    pub algorithm: Algorithm,
    /// Worker threads (`None` = available parallelism, capped at the net
    /// count).
    pub workers: Option<NonZeroUsize>,
    /// Record predecessor information so placements can be reconstructed
    /// (default `true`). Disable for pure throughput measurements.
    pub track_predecessors: bool,
    /// Wire-delay/slew model applied to every net (default
    /// [`ElmoreModel`]).
    pub delay_model: Arc<dyn DelayModel>,
    /// Optional per-net maximum output slew (default `None`).
    pub slew_limit: Option<Seconds>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            algorithm: Algorithm::default(),
            workers: None,
            track_predecessors: true,
            delay_model: Arc::new(ElmoreModel),
            slew_limit: None,
        }
    }
}

/// Solves a fleet of independent nets against one shared buffer library,
/// fanned out over a pool of worker threads.
///
/// Scheduling: net indices are queued **largest net first** (by node
/// count) into a shared multi-consumer channel, and idle workers steal the
/// next-largest remaining net. Large nets therefore start earliest and
/// cannot straggle at the end of the batch, which is what limits speedup
/// under naive round-robin partitioning when net sizes are heavy-tailed.
///
/// Each worker owns one [`SolveWorkspace`], so after the first few nets a
/// worker solves with no steady-state allocation. Results are written back
/// by input index: the report is **deterministic and bit-identical for any
/// worker count** (nets are independent sub-problems; only the wall time
/// changes).
///
/// # Example
///
/// ```
/// use fastbuf_batch::BatchSolver;
/// use fastbuf_buflib::BufferLibrary;
/// use fastbuf_netgen::SuiteSpec;
///
/// let nets = SuiteSpec { nets: 12, seed: 5, ..SuiteSpec::default() }.build();
/// let lib = BufferLibrary::paper_synthetic(8)?;
/// let report = BatchSolver::new(&nets, &lib).workers(4).solve();
/// assert_eq!(report.outcomes.len(), 12);
/// // Every net improved (or kept) its slack:
/// assert!(report.outcomes.iter().all(|o| o.slack >= o.slack_before));
/// # Ok::<(), fastbuf_buflib::LibraryError>(())
/// ```
#[derive(Debug)]
pub struct BatchSolver<'a> {
    nets: &'a [RoutingTree],
    library: &'a BufferLibrary,
    options: BatchOptions,
}

impl<'a> BatchSolver<'a> {
    /// Creates a batch solver with default options.
    pub fn new(nets: &'a [RoutingTree], library: &'a BufferLibrary) -> Self {
        BatchSolver {
            nets,
            library,
            options: BatchOptions::default(),
        }
    }

    /// Replaces all options.
    #[must_use]
    pub fn with_options(mut self, options: BatchOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the worker count (at least 1; capped at the net count).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.options.workers = Some(NonZeroUsize::new(workers.max(1)).expect("max(1) is nonzero"));
        self
    }

    /// Selects the per-net algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.options.algorithm = algorithm;
        self
    }

    /// Enables or disables predecessor tracking.
    #[must_use]
    pub fn track_predecessors(mut self, track: bool) -> Self {
        self.options.track_predecessors = track;
        self
    }

    /// Selects the wire-delay/slew model for every net.
    #[must_use]
    pub fn delay_model(mut self, model: Arc<dyn DelayModel>) -> Self {
        self.options.delay_model = model;
        self
    }

    /// Sets (or, with a non-finite value, clears) the per-net maximum
    /// output slew.
    #[must_use]
    pub fn slew_limit(mut self, limit: Seconds) -> Self {
        self.options.slew_limit = limit.is_finite().then_some(limit);
        self
    }

    /// Solves every net and returns the aggregated report, with per-net
    /// outcomes in input order.
    ///
    /// Per-net solving is routed through the `fastbuf-api` request layer
    /// (one [`Session`] for the whole batch, one single-scenario
    /// `SolveRequest` per net through each worker's reusable workspace) —
    /// results are bit-identical to the legacy direct-`Solver` path, which
    /// the equivalence tests assert.
    pub fn solve(&self) -> BatchReport {
        let start = Instant::now();
        let nets = self.nets;
        let library = self.library;
        let session = Session::builder(library.clone())
            .delay_model(Arc::clone(&self.options.delay_model))
            .build();
        let scenario = {
            let mut s = Scenario::named("batch").algorithm(self.options.algorithm);
            if let Some(limit) = self.options.slew_limit {
                s = s.slew_limit(limit);
            }
            s
        };
        let workers = self
            .options
            .workers
            .map(NonZeroUsize::get)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .clamp(1, nets.len().max(1));

        // Largest-first dispatch order (ties broken by index, so the
        // schedule itself is deterministic even though completion order is
        // not).
        let mut order: Vec<usize> = (0..nets.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(nets[i].node_count()), i));

        let (tx, rx) = channel::unbounded::<usize>();
        for i in order {
            tx.send(i).expect("receiver is alive");
        }
        drop(tx);

        let mut outcomes: Vec<Option<NetOutcome>> = Vec::with_capacity(nets.len());
        outcomes.resize_with(nets.len(), || None);

        let track = self.options.track_predecessors;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let rx = rx.clone();
                    let session = session.clone();
                    let scenario = scenario.clone();
                    scope.spawn(move || {
                        let model: &dyn DelayModel = &**session.delay_model();
                        let mut workspace = SolveWorkspace::new();
                        let mut local: Vec<(usize, NetOutcome)> = Vec::new();
                        while let Ok(i) = rx.recv() {
                            let tree = &nets[i];
                            let t0 = Instant::now();
                            let before = elmore::evaluate_with(tree, library, &[], model)
                                .expect("the empty placement is always legal");
                            let outcome = session
                                .request(tree)
                                .track_predecessors(track)
                                .scenario(scenario.clone())
                                .solve_in(&mut workspace)
                                .expect("a validated max-slack scenario cannot fail");
                            let solution = outcome
                                .scenarios
                                .into_iter()
                                .next()
                                .and_then(|so| match so.result {
                                    ScenarioResult::Solution(s) => Some(s),
                                    _ => None,
                                })
                                .expect("max-slack outcomes carry one solution");
                            // Ground-truth worst slew of the solved net: a
                            // forward evaluation of the reconstructed
                            // placements (falls back to the DP's root-stage
                            // slew when tracking is off).
                            let max_slew = if solution.tracked {
                                elmore::evaluate_with(
                                    tree,
                                    library,
                                    &solution.placement_pairs(),
                                    model,
                                )
                                .expect("reconstructed placements are legal")
                                .max_slew
                            } else {
                                solution.root_slew
                            };
                            local.push((
                                i,
                                NetOutcome {
                                    index: i,
                                    sinks: tree.sink_count(),
                                    sites: tree.buffer_site_count(),
                                    slack_before: before.slack,
                                    slack: solution.slack,
                                    cost: solution.total_cost(library),
                                    slew_before: before.max_slew,
                                    max_slew,
                                    slew_ok: solution.slew_ok,
                                    placements: solution.placements,
                                    stats: solution.stats,
                                    elapsed: t0.elapsed(),
                                },
                            ));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (i, outcome) in handle.join().expect("worker panicked") {
                    outcomes[i] = Some(outcome);
                }
            }
        });

        let outcomes: Vec<NetOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every queued net was solved"))
            .collect();
        BatchReport::from_outcomes(
            outcomes,
            self.options.algorithm,
            workers,
            self.options.delay_model.name(),
            self.options.slew_limit,
            start.elapsed(),
        )
    }
}
