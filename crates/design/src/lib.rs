//! Design-level repeater insertion: buffer every net of a netlist, in
//! parallel.
//!
//! The paper's introduction motivates fast buffer insertion with Saxena et
//! al.'s projection that **35% of all cells will be intra-block repeaters**
//! — i.e. the algorithm runs once per net over an entire design, and its
//! runtime is multiplied by tens of thousands of nets. This crate supplies
//! that outer loop:
//!
//! * [`Design`] — a named collection of routing trees;
//! * [`DesignSpec`] — a deterministic generator drawing net sizes from a
//!   power-law-ish mix (most nets small, a heavy tail of large ones, as in
//!   real netlists);
//! * [`solve_design`] — solves every net with a chosen
//!   [`Algorithm`], fanned out over worker threads through a
//!   `crossbeam` channel, and aggregates a timing report (WNS/TNS, buffer
//!   count, cost, wall time).
//!
//! Parallelism note: nets are independent problems, so the results are
//! bit-identical regardless of thread count (asserted in tests); only the
//! wall time changes.
//!
//! ```
//! use fastbuf_buflib::BufferLibrary;
//! use fastbuf_core::Algorithm;
//! use fastbuf_design::{solve_design, DesignSolveOptions, DesignSpec};
//!
//! let design = DesignSpec { nets: 12, seed: 1, ..DesignSpec::default() }.build();
//! let lib = BufferLibrary::paper_synthetic(8)?;
//! let report = solve_design(&design, &lib, &DesignSolveOptions::default());
//! assert_eq!(report.nets.len(), 12);
//! assert!(report.wns_after >= report.wns_before);
//! # Ok::<(), fastbuf_buflib::LibraryError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;

use fastbuf_api::{Scenario, Session};
use fastbuf_buflib::units::{Microns, Seconds};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Algorithm, DelayModel, ElmoreModel};
use fastbuf_netgen::SuiteSpec;
use fastbuf_rctree::{elmore, RoutingTree};

/// One net of a design.
#[derive(Clone, Debug)]
pub struct DesignNet {
    /// Net name (unique within the design).
    pub name: String,
    /// The routing tree.
    pub tree: RoutingTree,
}

/// A collection of nets to be buffered together.
#[derive(Clone, Debug, Default)]
pub struct Design {
    /// The nets, in insertion order.
    pub nets: Vec<DesignNet>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Self {
        Design::default()
    }

    /// Adds a net.
    pub fn push(&mut self, name: impl Into<String>, tree: RoutingTree) {
        self.nets.push(DesignNet {
            name: name.into(),
            tree,
        });
    }

    /// Total sink count across all nets.
    pub fn total_sinks(&self) -> usize {
        self.nets.iter().map(|n| n.tree.sink_count()).sum()
    }

    /// Total buffer-position count across all nets.
    pub fn total_sites(&self) -> usize {
        self.nets.iter().map(|n| n.tree.buffer_site_count()).sum()
    }
}

/// Deterministic generator of synthetic designs.
///
/// Net sizes follow a heavy-tailed mix: ~70% small nets (2–8 sinks), ~25%
/// medium (9–64), ~5% large (65–`max_sinks`) — the shape of real netlists,
/// where a few big buses and clock spines dominate the runtime.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignSpec {
    /// Number of nets.
    pub nets: usize,
    /// Largest net the tail can produce.
    pub max_sinks: usize,
    /// Buffer-site pitch used for every net.
    pub site_pitch: Microns,
    /// Master seed; net `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for DesignSpec {
    fn default() -> Self {
        DesignSpec {
            nets: 64,
            max_sinks: 256,
            site_pitch: Microns::new(200.0),
            seed: 1,
        }
    }
}

impl DesignSpec {
    /// Builds the design.
    ///
    /// # Panics
    ///
    /// Panics if `nets == 0` or `max_sinks < 8`.
    pub fn build(&self) -> Design {
        assert!(self.nets > 0, "a design needs at least one net");
        // The size mix and per-net construction are shared with
        // `fastbuf_netgen::SuiteSpec`, so designs and batch suites built
        // from the same parameters contain the same nets.
        let suite = SuiteSpec {
            nets: self.nets,
            max_sinks: self.max_sinks,
            site_pitch: self.site_pitch,
            seed: self.seed,
            slew_stress: false,
        };
        let mut design = Design::new();
        for i in 0..self.nets {
            design.push(format!("net{i:05}"), suite.build_net(i));
        }
        design
    }
}

/// Options for [`solve_design`].
#[derive(Clone, Debug)]
pub struct DesignSolveOptions {
    /// The per-net algorithm.
    pub algorithm: Algorithm,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<NonZeroUsize>,
    /// Wire-delay/slew model applied to every net.
    pub delay_model: Arc<dyn DelayModel>,
    /// Optional per-net maximum output slew — the design-level scenario
    /// knob for slew-constrained signoff runs.
    pub slew_limit: Option<Seconds>,
}

impl Default for DesignSolveOptions {
    fn default() -> Self {
        DesignSolveOptions {
            algorithm: Algorithm::LiShi,
            threads: None,
            delay_model: Arc::new(ElmoreModel),
            slew_limit: None,
        }
    }
}

/// Per-net outcome within a [`DesignReport`].
#[derive(Clone, Debug)]
pub struct NetResult {
    /// Net name.
    pub name: String,
    /// Slack before buffering.
    pub slack_before: Seconds,
    /// Slack after optimal buffering.
    pub slack_after: Seconds,
    /// Buffers inserted.
    pub buffers: usize,
    /// Total buffer cost.
    pub cost: f64,
    /// `false` when a slew limit was set and this net could not meet it.
    pub slew_ok: bool,
    /// Per-net solve time.
    pub elapsed: Duration,
}

/// Aggregated outcome of [`solve_design`].
#[derive(Clone, Debug)]
pub struct DesignReport {
    /// Per-net results, in design order.
    pub nets: Vec<NetResult>,
    /// Worst net slack before buffering.
    pub wns_before: Seconds,
    /// Worst net slack after buffering.
    pub wns_after: Seconds,
    /// Total negative slack (sum over nets of `min(slack, 0)`) before.
    pub tns_before: Seconds,
    /// Total negative slack after.
    pub tns_after: Seconds,
    /// Buffers inserted across the design.
    pub total_buffers: usize,
    /// Total buffer cost across the design.
    pub total_cost: f64,
    /// Wall-clock time for the whole design.
    pub elapsed: Duration,
    /// Worker threads actually used.
    pub threads: usize,
    /// Number of nets that could not meet the slew limit.
    pub slew_violations: usize,
}

/// Buffers every net of `design` with `library`, in parallel, and
/// aggregates the report. Results are deterministic and independent of the
/// thread count.
///
/// Per-net solving is routed through the `fastbuf-api` request layer: one
/// [`Session`] for the design, one single-scenario request per net, warm
/// workspaces shared through the session pool.
pub fn solve_design(
    design: &Design,
    library: &BufferLibrary,
    options: &DesignSolveOptions,
) -> DesignReport {
    let start = Instant::now();
    let session = Session::builder(library.clone())
        .delay_model(Arc::clone(&options.delay_model))
        .build();
    let scenario = {
        let mut s = Scenario::named("design").algorithm(options.algorithm);
        if let Some(limit) = options.slew_limit {
            s = s.slew_limit(limit);
        }
        s
    };
    let threads = options
        .threads
        .map(NonZeroUsize::get)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1)
        .min(design.nets.len().max(1));

    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..design.nets.len() {
        tx.send(i).expect("channel open");
    }
    drop(tx);

    let mut slots: Vec<Option<NetResult>> = Vec::with_capacity(design.nets.len());
    slots.resize_with(design.nets.len(), || None);
    let slot_refs = &design.nets;
    let results = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let results = &results;
            let session = &session;
            let scenario = &scenario;
            scope.spawn(move || {
                // One workspace per worker, reused across nets via
                // `solve_in` — same pattern as `fastbuf-batch`, no
                // per-net pool traffic.
                let mut workspace = fastbuf_core::SolveWorkspace::new();
                while let Ok(i) = rx.recv() {
                    let net = &slot_refs[i];
                    let t0 = Instant::now();
                    let before =
                        elmore::evaluate_with(&net.tree, library, &[], &*options.delay_model)
                            .expect("empty assignment is always legal");
                    let outcome = session
                        .request(&net.tree)
                        .scenario(scenario.clone())
                        .solve_in(&mut workspace)
                        .expect("a validated max-slack scenario cannot fail");
                    let sol = outcome.solution().expect("single-scenario max-slack");
                    let result = NetResult {
                        name: net.name.clone(),
                        slack_before: before.slack,
                        slack_after: sol.slack,
                        buffers: sol.placements.len(),
                        cost: sol.total_cost(library),
                        slew_ok: sol.slew_ok,
                        elapsed: t0.elapsed(),
                    };
                    results.lock().expect("no panics hold the lock")[i] = Some(result);
                }
            });
        }
    });

    let nets: Vec<NetResult> = slots
        .into_iter()
        .map(|r| r.expect("every net was solved"))
        .collect();
    let mut report = DesignReport {
        wns_before: Seconds::new(f64::INFINITY),
        wns_after: Seconds::new(f64::INFINITY),
        tns_before: Seconds::ZERO,
        tns_after: Seconds::ZERO,
        total_buffers: 0,
        total_cost: 0.0,
        elapsed: start.elapsed(),
        threads,
        slew_violations: 0,
        nets,
    };
    for n in &report.nets {
        report.wns_before = report.wns_before.min(n.slack_before);
        report.wns_after = report.wns_after.min(n.slack_after);
        report.tns_before += n.slack_before.min(Seconds::ZERO);
        report.tns_after += n.slack_after.min(Seconds::ZERO);
        report.total_buffers += n.buffers;
        report.total_cost += n.cost;
        report.slew_violations += usize::from(!n.slew_ok);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_design() -> Design {
        DesignSpec {
            nets: 10,
            max_sinks: 32,
            seed: 42,
            ..DesignSpec::default()
        }
        .build()
    }

    #[test]
    fn generator_is_deterministic() {
        let a = small_design();
        let b = small_design();
        assert_eq!(a.nets.len(), b.nets.len());
        for (x, y) in a.nets.iter().zip(&b.nets) {
            assert_eq!(x.name, y.name);
            assert_eq!(
                fastbuf_rctree::io::write(&x.tree),
                fastbuf_rctree::io::write(&y.tree)
            );
        }
    }

    #[test]
    fn sizes_follow_the_mix() {
        let d = DesignSpec {
            nets: 300,
            max_sinks: 128,
            seed: 7,
            ..DesignSpec::default()
        }
        .build();
        let small = d.nets.iter().filter(|n| n.tree.sink_count() <= 8).count();
        let large = d.nets.iter().filter(|n| n.tree.sink_count() >= 65).count();
        assert!(small > 150, "most nets should be small: {small}");
        assert!(large >= 3, "the tail should exist: {large}");
        assert!(d.total_sinks() > 300);
        assert!(d.total_sites() > d.total_sinks());
    }

    #[test]
    fn report_aggregates_consistently() {
        let design = small_design();
        let lib = BufferLibrary::paper_synthetic(4).unwrap();
        let report = solve_design(&design, &lib, &DesignSolveOptions::default());
        assert_eq!(report.nets.len(), design.nets.len());
        assert!(report.wns_after >= report.wns_before);
        assert!(report.tns_after >= report.tns_before);
        let sum: usize = report.nets.iter().map(|n| n.buffers).sum();
        assert_eq!(sum, report.total_buffers);
        for n in &report.nets {
            assert!(n.slack_after >= n.slack_before, "{}", n.name);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let design = small_design();
        let lib = BufferLibrary::paper_synthetic(8).unwrap();
        let solve = |threads| {
            solve_design(
                &design,
                &lib,
                &DesignSolveOptions {
                    threads: NonZeroUsize::new(threads),
                    ..DesignSolveOptions::default()
                },
            )
        };
        let one = solve(1);
        let four = solve(4);
        assert_eq!(one.threads, 1);
        assert!(four.threads >= 1);
        for (a, b) in one.nets.iter().zip(&four.nets) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.slack_after, b.slack_after);
            assert_eq!(a.buffers, b.buffers);
        }
    }

    #[test]
    fn algorithms_agree_design_wide() {
        let design = small_design();
        let lib = BufferLibrary::paper_synthetic(8).unwrap();
        let mk = |algorithm| {
            solve_design(
                &design,
                &lib,
                &DesignSolveOptions {
                    algorithm,
                    ..DesignSolveOptions::default()
                },
            )
        };
        let a = mk(Algorithm::Lillis);
        let b = mk(Algorithm::LiShi);
        for (x, y) in a.nets.iter().zip(&b.nets) {
            assert!(
                (x.slack_after.picos() - y.slack_after.picos()).abs() < 1e-6,
                "{}",
                x.name
            );
        }
        assert!((a.wns_after.picos() - b.wns_after.picos()).abs() < 1e-6);
    }

    #[test]
    fn slew_limited_signoff_reports_violations() {
        let design = small_design();
        let lib = BufferLibrary::paper_synthetic(8).unwrap();
        let unconstrained = solve_design(&design, &lib, &DesignSolveOptions::default());
        assert_eq!(unconstrained.slew_violations, 0);
        let constrained = solve_design(
            &design,
            &lib,
            &DesignSolveOptions {
                slew_limit: Some(Seconds::from_pico(150.0)),
                ..DesignSolveOptions::default()
            },
        );
        assert_eq!(constrained.nets.len(), design.nets.len());
        assert_eq!(
            constrained.slew_violations,
            constrained.nets.iter().filter(|n| !n.slew_ok).count()
        );
        // Tightening a constraint can only cost slack.
        assert!(constrained.wns_after.value() <= unconstrained.wns_after.value() + 1e-15);
    }

    #[test]
    fn scaled_model_design_runs() {
        use fastbuf_core::ScaledElmoreModel;
        let design = small_design();
        let lib = BufferLibrary::paper_synthetic(4).unwrap();
        let report = solve_design(
            &design,
            &lib,
            &DesignSolveOptions {
                delay_model: Arc::new(ScaledElmoreModel::default()),
                ..DesignSolveOptions::default()
            },
        );
        assert_eq!(report.nets.len(), design.nets.len());
        assert!(report.wns_after >= report.wns_before);
    }

    #[test]
    #[should_panic(expected = "at least one net")]
    fn empty_spec_panics() {
        let _ = DesignSpec {
            nets: 0,
            ..DesignSpec::default()
        }
        .build();
    }

    #[test]
    fn manual_design_assembly() {
        let mut d = Design::new();
        d.push(
            "alpha",
            fastbuf_netgen::line_net(fastbuf_buflib::units::Microns::new(4000.0), 3),
        );
        assert_eq!(d.nets.len(), 1);
        assert_eq!(d.total_sinks(), 1);
        assert_eq!(d.total_sites(), 3);
        let lib = BufferLibrary::paper_synthetic(2).unwrap();
        let report = solve_design(&d, &lib, &DesignSolveOptions::default());
        assert_eq!(report.nets[0].name, "alpha");
        assert_eq!(report.threads, 1); // one net -> one worker
    }
}
