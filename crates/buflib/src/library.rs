//! The buffer library: a validated, immutable collection of buffer types
//! with the sorted orders required by the O(bn²) algorithm precomputed.

use std::fmt;

use crate::buffer::{BufferType, BufferTypeId};
use crate::error::LibraryError;
use crate::units::{Farads, Ohms, Seconds};

/// A validated buffer library, the paper's `B = {B_1, ..., B_b}`.
///
/// Construction validates every entry (finite, positive resistance,
/// non-negative capacitance/delay/cost, unique names) and precomputes the two
/// orders the Li–Shi algorithm relies on:
///
/// * **non-increasing driving resistance** (`R(B_1) ≥ R(B_2) ≥ ...`) —
///   Lemma 1 of the paper guarantees that the best candidates for buffers in
///   this order have non-decreasing capacitance, enabling the monotone hull
///   walk;
/// * **non-decreasing input capacitance** — Theorem 2 uses it to merge the
///   `b` new buffered candidates into a nonredundant list in O(k + b).
///
/// # Example
///
/// ```
/// use fastbuf_buflib::BufferLibrary;
///
/// let lib = BufferLibrary::paper_synthetic(8)?;
/// assert_eq!(lib.len(), 8);
/// // Resistances are non-increasing in the precomputed order.
/// let rs: Vec<f64> = lib.by_resistance_desc().iter()
///     .map(|&id| lib.get(id).driving_resistance().value()).collect();
/// assert!(rs.windows(2).all(|w| w[0] >= w[1]));
/// # Ok::<(), fastbuf_buflib::LibraryError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BufferLibrary {
    buffers: Vec<BufferType>,
    by_resistance_desc: Vec<BufferTypeId>,
    by_input_cap_asc: Vec<BufferTypeId>,
    /// `cap_rank[id] = position of id in by_input_cap_asc`.
    cap_rank: Vec<u32>,
}

impl BufferLibrary {
    /// Creates a library from buffer types, validating every entry.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError`] if the list is empty, any parameter is
    /// non-finite, a resistance is non-positive, a capacitance / intrinsic
    /// delay / cost is negative, or two entries share a name.
    pub fn new(buffers: Vec<BufferType>) -> Result<Self, LibraryError> {
        if buffers.is_empty() {
            return Err(LibraryError::Empty);
        }
        Self::build(buffers)
    }

    /// Creates an empty library (no buffering possible). Provided so that
    /// "wires only" flows don't need an `Option<BufferLibrary>`.
    pub fn empty() -> Self {
        BufferLibrary {
            buffers: Vec::new(),
            by_resistance_desc: Vec::new(),
            by_input_cap_asc: Vec::new(),
            cap_rank: Vec::new(),
        }
    }

    fn build(buffers: Vec<BufferType>) -> Result<Self, LibraryError> {
        for b in &buffers {
            let name = || b.name().to_owned();
            if !b.driving_resistance().is_finite() {
                return Err(LibraryError::NonFiniteParameter {
                    buffer: name(),
                    field: "resistance",
                });
            }
            if !b.input_capacitance().is_finite() {
                return Err(LibraryError::NonFiniteParameter {
                    buffer: name(),
                    field: "capacitance",
                });
            }
            if !b.intrinsic_delay().is_finite() {
                return Err(LibraryError::NonFiniteParameter {
                    buffer: name(),
                    field: "intrinsic delay",
                });
            }
            if b.driving_resistance() <= Ohms::ZERO {
                return Err(LibraryError::NonPositiveResistance { buffer: name() });
            }
            if b.input_capacitance() < Farads::ZERO {
                return Err(LibraryError::NegativeCapacitance { buffer: name() });
            }
            if b.intrinsic_delay() < Seconds::ZERO {
                return Err(LibraryError::NegativeIntrinsicDelay { buffer: name() });
            }
            if !b.output_slew().is_finite() {
                return Err(LibraryError::NonFiniteParameter {
                    buffer: name(),
                    field: "output slew",
                });
            }
            if b.output_slew() < Seconds::ZERO {
                return Err(LibraryError::NegativeOutputSlew { buffer: name() });
            }
            if !b.cost().is_finite() || b.cost() < 0.0 {
                return Err(LibraryError::InvalidCost { buffer: name() });
            }
        }
        let mut names: Vec<&str> = buffers.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(LibraryError::DuplicateName {
                name: w[0].to_owned(),
            });
        }

        let mut by_resistance_desc: Vec<BufferTypeId> =
            (0..buffers.len()).map(BufferTypeId::new).collect();
        // `total_cmp`, not `partial_cmp().unwrap()`: the parameters are
        // validated finite above, but the sort must stay total (and
        // panic-free) even if validation ever loosens.
        by_resistance_desc.sort_by(|&a, &b| {
            let (ba, bb) = (&buffers[a.index()], &buffers[b.index()]);
            bb.driving_resistance()
                .value()
                .total_cmp(&ba.driving_resistance().value())
                .then(
                    ba.input_capacitance()
                        .value()
                        .total_cmp(&bb.input_capacitance().value()),
                )
                .then(a.cmp(&b))
        });
        let mut by_input_cap_asc: Vec<BufferTypeId> =
            (0..buffers.len()).map(BufferTypeId::new).collect();
        by_input_cap_asc.sort_by(|&a, &b| {
            let (ba, bb) = (&buffers[a.index()], &buffers[b.index()]);
            ba.input_capacitance()
                .value()
                .total_cmp(&bb.input_capacitance().value())
                .then(a.cmp(&b))
        });
        let mut cap_rank = vec![0u32; buffers.len()];
        for (rank, id) in by_input_cap_asc.iter().enumerate() {
            cap_rank[id.index()] = rank as u32;
        }
        Ok(BufferLibrary {
            buffers,
            by_resistance_desc,
            by_input_cap_asc,
            cap_rank,
        })
    }

    /// Generates a synthetic library of `b` types spanning the parameter
    /// ranges reported in the paper's evaluation (§4): driving resistance
    /// 180–7000 Ω, input capacitance 0.7–23 fF, intrinsic delay 29–36.4 ps.
    ///
    /// Strength is geometric: the strongest buffer has the lowest resistance
    /// and the highest input capacitance, as in real cell libraries. Costs
    /// are proportional to drive strength (≈ area).
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::Empty`] if `b == 0`.
    pub fn paper_synthetic(b: usize) -> Result<Self, LibraryError> {
        SyntheticLibrarySpec::paper().build(b)
    }

    /// Like [`BufferLibrary::paper_synthetic`] but with deterministic
    /// pseudo-random jitter on every parameter, so that no two entries are
    /// collinear. Useful for stress tests.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::Empty`] if `b == 0`.
    pub fn paper_synthetic_jittered(b: usize, seed: u64) -> Result<Self, LibraryError> {
        let mut spec = SyntheticLibrarySpec::paper();
        spec.jitter = 0.15;
        spec.seed = seed;
        spec.build(b)
    }

    /// A mixed repeater library: like [`BufferLibrary::paper_synthetic`]
    /// but every second entry is an inverter (same drive parameters, ~20%
    /// cheaper and slightly faster, as real inverters are relative to the
    /// equivalent two-stage buffer). For the polarity-aware solver.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::Empty`] if `b == 0`.
    pub fn paper_synthetic_mixed(b: usize) -> Result<Self, LibraryError> {
        let base = Self::paper_synthetic(b)?;
        BufferLibrary::new(
            base.buffers
                .iter()
                .enumerate()
                .map(|(i, buf)| {
                    if i % 2 == 1 {
                        BufferType::new(
                            format!("inv{i}"),
                            buf.driving_resistance(),
                            buf.input_capacitance(),
                            buf.intrinsic_delay() * 0.7,
                        )
                        .with_cost((buf.cost() * 0.8).round().max(1.0))
                        .with_inverting(true)
                    } else {
                        buf.clone()
                    }
                })
                .collect(),
        )
    }

    /// The buffer type for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this library.
    #[inline]
    pub fn get(&self, id: BufferTypeId) -> &BufferType {
        &self.buffers[id.index()]
    }

    /// Number of buffer types (the paper's `b`).
    #[inline]
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// `true` if the library holds no buffer types.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Iterates over `(id, buffer)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (BufferTypeId, &BufferType)> {
        self.buffers
            .iter()
            .enumerate()
            .map(|(i, b)| (BufferTypeId::new(i), b))
    }

    /// All ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = BufferTypeId> + '_ {
        (0..self.buffers.len()).map(BufferTypeId::new)
    }

    /// Ids sorted by non-increasing driving resistance (Lemma 1 order).
    #[inline]
    pub fn by_resistance_desc(&self) -> &[BufferTypeId] {
        &self.by_resistance_desc
    }

    /// Ids sorted by non-decreasing input capacitance (Theorem 2 order).
    #[inline]
    pub fn by_input_cap_asc(&self) -> &[BufferTypeId] {
        &self.by_input_cap_asc
    }

    /// Rank of `id` in the non-decreasing input-capacitance order.
    #[inline]
    pub fn cap_rank(&self, id: BufferTypeId) -> usize {
        self.cap_rank[id.index()] as usize
    }

    /// Finds a buffer type by name.
    pub fn find(&self, name: &str) -> Option<BufferTypeId> {
        self.buffers
            .iter()
            .position(|b| b.name() == name)
            .map(BufferTypeId::new)
    }

    /// Creates a sub-library from a subset of this library's ids (e.g. a
    /// clustering result). Entries keep their parameters but receive fresh,
    /// dense ids in the order given.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::Empty`] if `ids` is empty.
    pub fn subset(&self, ids: &[BufferTypeId]) -> Result<Self, LibraryError> {
        BufferLibrary::new(ids.iter().map(|&id| self.get(id).clone()).collect())
    }

    /// Serializes the library to the plain-text exchange format: one
    /// `name r_ohms c_ff k_ps cost [max_load_ff] [slew=ps] [inv]` line per
    /// buffer.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "# fastbuf buffer library: name r_ohms c_ff k_ps cost [max_load_ff] [slew=ps] [inv]\n",
        );
        for b in &self.buffers {
            out.push_str(&format!(
                "{} {} {} {} {}",
                b.name(),
                b.driving_resistance().value(),
                b.input_capacitance().femtos(),
                b.intrinsic_delay().picos(),
                b.cost(),
            ));
            if let Some(ml) = b.max_load() {
                out.push_str(&format!(" {}", ml.femtos()));
            }
            if b.output_slew() > Seconds::ZERO {
                out.push_str(&format!(" slew={}", b.output_slew().picos()));
            }
            if b.is_inverting() {
                out.push_str(" inv");
            }
            out.push('\n');
        }
        out
    }

    /// Parses the plain-text exchange format produced by
    /// [`BufferLibrary::to_text`]. Lines starting with `#` and blank lines
    /// are ignored.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, or a
    /// [`LibraryError`] (as a string) if the parsed entries fail validation.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut buffers = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| format!("line {}: missing name", lineno + 1))?;
            // Reject NaN at parse time: `"nan".parse::<f64>()` succeeds, but
            // a NaN parameter would defeat every downstream ordering and the
            // unit newtypes debug-assert against it — a degenerate entry
            // must be a load error, never a later panic.
            let mut field = |what: &str| -> Result<f64, String> {
                let v = it
                    .next()
                    .ok_or_else(|| format!("line {}: missing {what}", lineno + 1))?
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))?;
                if v.is_nan() {
                    return Err(format!("line {}: {what} is NaN", lineno + 1));
                }
                Ok(v)
            };
            let r = field("resistance")?;
            let c = field("capacitance")?;
            let k = field("intrinsic delay")?;
            let cost = field("cost")?;
            let mut buf = BufferType::new(
                name,
                Ohms::new(r),
                Farads::from_femto(c),
                Seconds::from_pico(k),
            )
            .with_cost(cost);
            for extra in it {
                if extra == "inv" {
                    buf = buf.with_inverting(true);
                } else if let Some(ps) = extra.strip_prefix("slew=") {
                    let ps: f64 = ps
                        .parse()
                        .map_err(|e| format!("line {}: bad output slew: {e}", lineno + 1))?;
                    if ps.is_nan() {
                        return Err(format!("line {}: output slew is NaN", lineno + 1));
                    }
                    buf = buf.with_output_slew(Seconds::from_pico(ps));
                } else {
                    let ml: f64 = extra
                        .parse()
                        .map_err(|e| format!("line {}: bad max load: {e}", lineno + 1))?;
                    if ml.is_nan() {
                        return Err(format!("line {}: max load is NaN", lineno + 1));
                    }
                    buf = buf.with_max_load(Farads::from_femto(ml));
                }
            }
            buffers.push(buf);
        }
        BufferLibrary::new(buffers).map_err(|e| e.to_string())
    }
}

impl fmt::Display for BufferLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "buffer library ({} types):", self.len())?;
        for b in &self.buffers {
            writeln!(f, "  {b}")?;
        }
        Ok(())
    }
}

/// Parameter ranges for synthetic library generation.
///
/// The default ([`SyntheticLibrarySpec::paper`]) spans the ranges published
/// in the paper's §4. Resistance is interpolated geometrically from
/// `resistance_max` (weakest) down to `resistance_min` (strongest); input
/// capacitance geometrically from `cap_min` up to `cap_max`; intrinsic delay
/// linearly.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticLibrarySpec {
    /// Resistance of the strongest buffer (paper: 180 Ω).
    pub resistance_min: Ohms,
    /// Resistance of the weakest buffer (paper: 7000 Ω).
    pub resistance_max: Ohms,
    /// Input capacitance of the weakest buffer (paper: 0.7 fF).
    pub cap_min: Farads,
    /// Input capacitance of the strongest buffer (paper: 23 fF).
    pub cap_max: Farads,
    /// Intrinsic delay of the weakest buffer (paper: 29 ps).
    pub delay_min: Seconds,
    /// Intrinsic delay of the strongest buffer (paper: 36.4 ps).
    pub delay_max: Seconds,
    /// Relative jitter applied to every parameter (0 = none).
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Name prefix for generated buffers.
    pub name_prefix: String,
}

impl SyntheticLibrarySpec {
    /// The parameter ranges of the paper's evaluation section.
    pub fn paper() -> Self {
        SyntheticLibrarySpec {
            resistance_min: Ohms::new(180.0),
            resistance_max: Ohms::new(7000.0),
            cap_min: Farads::from_femto(0.7),
            cap_max: Farads::from_femto(23.0),
            delay_min: Seconds::from_pico(29.0),
            delay_max: Seconds::from_pico(36.4),
            jitter: 0.0,
            seed: 0,
            name_prefix: "buf".to_owned(),
        }
    }

    /// Builds a library of `b` types from this spec.
    ///
    /// Index 0 is the weakest buffer (highest R, lowest C); index `b-1` the
    /// strongest. Costs are proportional to drive strength:
    /// `cost = max(1, round(R_max / R_i))`.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::Empty`] if `b == 0`, or a validation error if
    /// the spec ranges are degenerate (e.g. non-positive resistance).
    pub fn build(&self, b: usize) -> Result<BufferLibrary, LibraryError> {
        if b == 0 {
            return Err(LibraryError::Empty);
        }
        let mut rng = SplitMix64::new(self.seed);
        let mut buffers = Vec::with_capacity(b);
        for i in 0..b {
            let t = if b == 1 {
                1.0
            } else {
                i as f64 / (b - 1) as f64
            };
            // Geometric interpolation for R (descending) and C (ascending).
            let r = geo(self.resistance_max.value(), self.resistance_min.value(), t);
            let c = geo(self.cap_min.value(), self.cap_max.value(), t);
            let k = self.delay_min.value() + t * (self.delay_max.value() - self.delay_min.value());
            let j = |rng: &mut SplitMix64| 1.0 + self.jitter * (2.0 * rng.next_f64() - 1.0);
            let r = r * j(&mut rng);
            let c = c * j(&mut rng);
            let k = k * j(&mut rng);
            let cost = (self.resistance_max.value() / r).round().max(1.0);
            buffers.push(
                BufferType::new(
                    format!("{}{}", self.name_prefix, i),
                    Ohms::new(r),
                    Farads::new(c),
                    Seconds::new(k),
                )
                .with_cost(cost),
            );
        }
        BufferLibrary::new(buffers)
    }
}

/// Geometric interpolation between `a` and `b` at parameter `t ∈ [0, 1]`.
fn geo(a: f64, b: f64, t: f64) -> f64 {
    a * (b / a).powf(t)
}

/// Tiny deterministic PRNG (SplitMix64) so this crate needs no `rand`
/// dependency for jittered generation.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_spans_paper_ranges() {
        let lib = BufferLibrary::paper_synthetic(8).unwrap();
        assert_eq!(lib.len(), 8);
        let weakest = lib.get(BufferTypeId::new(0));
        let strongest = lib.get(BufferTypeId::new(7));
        assert!((weakest.driving_resistance().value() - 7000.0).abs() < 1e-6);
        assert!((strongest.driving_resistance().value() - 180.0).abs() < 1e-6);
        assert!((weakest.input_capacitance().femtos() - 0.7).abs() < 1e-9);
        assert!((strongest.input_capacitance().femtos() - 23.0).abs() < 1e-9);
        assert!((weakest.intrinsic_delay().picos() - 29.0).abs() < 1e-9);
        assert!((strongest.intrinsic_delay().picos() - 36.4).abs() < 1e-9);
    }

    #[test]
    fn resistance_order_is_non_increasing() {
        for b in [1usize, 2, 8, 64] {
            let lib = BufferLibrary::paper_synthetic(b).unwrap();
            let rs: Vec<f64> = lib
                .by_resistance_desc()
                .iter()
                .map(|&id| lib.get(id).driving_resistance().value())
                .collect();
            assert!(rs.windows(2).all(|w| w[0] >= w[1]), "b={b}: {rs:?}");
        }
    }

    #[test]
    fn cap_order_is_non_decreasing_and_rank_consistent() {
        let lib = BufferLibrary::paper_synthetic_jittered(16, 42).unwrap();
        let cs: Vec<f64> = lib
            .by_input_cap_asc()
            .iter()
            .map(|&id| lib.get(id).input_capacitance().value())
            .collect();
        assert!(cs.windows(2).all(|w| w[0] <= w[1]));
        for (rank, &id) in lib.by_input_cap_asc().iter().enumerate() {
            assert_eq!(lib.cap_rank(id), rank);
        }
    }

    #[test]
    fn single_buffer_library() {
        let lib = BufferLibrary::paper_synthetic(1).unwrap();
        assert_eq!(lib.len(), 1);
        // With b == 1 the generator emits the strongest corner.
        assert!((lib.get(BufferTypeId::new(0)).input_capacitance().femtos() - 23.0).abs() < 1e-9);
    }

    #[test]
    fn empty_library_errors_but_empty_ctor_works() {
        assert_eq!(BufferLibrary::new(vec![]), Err(LibraryError::Empty));
        assert_eq!(BufferLibrary::paper_synthetic(0), Err(LibraryError::Empty));
        let e = BufferLibrary::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn duplicate_names_rejected() {
        let b = BufferType::new(
            "same",
            Ohms::new(100.0),
            Farads::from_femto(1.0),
            Seconds::ZERO,
        );
        let err = BufferLibrary::new(vec![b.clone(), b]).unwrap_err();
        assert_eq!(
            err,
            LibraryError::DuplicateName {
                name: "same".into()
            }
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mk = |r: f64, c: f64, k: f64| {
            BufferLibrary::new(vec![BufferType::new(
                "x",
                Ohms::new(r),
                Farads::new(c),
                Seconds::new(k),
            )])
        };
        assert!(matches!(
            mk(0.0, 1e-15, 0.0),
            Err(LibraryError::NonPositiveResistance { .. })
        ));
        assert!(matches!(
            mk(-5.0, 1e-15, 0.0),
            Err(LibraryError::NonPositiveResistance { .. })
        ));
        assert!(matches!(
            mk(100.0, -1e-15, 0.0),
            Err(LibraryError::NegativeCapacitance { .. })
        ));
        assert!(matches!(
            mk(100.0, 1e-15, -1e-12),
            Err(LibraryError::NegativeIntrinsicDelay { .. })
        ));
        assert!(matches!(
            mk(f64::INFINITY, 1e-15, 0.0),
            Err(LibraryError::NonFiniteParameter {
                field: "resistance",
                ..
            })
        ));
    }

    #[test]
    fn invalid_cost_rejected() {
        let b = BufferType::new(
            "x",
            Ohms::new(100.0),
            Farads::from_femto(1.0),
            Seconds::ZERO,
        )
        .with_cost(-1.0);
        assert!(matches!(
            BufferLibrary::new(vec![b]),
            Err(LibraryError::InvalidCost { .. })
        ));
    }

    #[test]
    fn find_by_name_and_subset() {
        let lib = BufferLibrary::paper_synthetic(8).unwrap();
        let id = lib.find("buf3").unwrap();
        assert_eq!(id.index(), 3);
        assert!(lib.find("nope").is_none());

        let sub = lib
            .subset(&[BufferTypeId::new(0), BufferTypeId::new(7)])
            .unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(BufferTypeId::new(1)).name(), "buf7");
        assert!(sub.subset(&[]).is_err());
    }

    #[test]
    fn text_roundtrip() {
        let lib = BufferLibrary::paper_synthetic_jittered(6, 7).unwrap();
        let text = lib.to_text();
        let back = BufferLibrary::from_text(&text).unwrap();
        assert_eq!(back.len(), lib.len());
        for (a, b) in lib.iter().zip(back.iter()) {
            assert_eq!(a.1.name(), b.1.name());
            assert!(
                (a.1.driving_resistance().value() - b.1.driving_resistance().value()).abs()
                    < 1e-9 * a.1.driving_resistance().value().abs()
            );
        }
    }

    #[test]
    fn text_roundtrip_with_max_load() {
        let lib = BufferLibrary::new(vec![BufferType::new(
            "b",
            Ohms::new(100.0),
            Farads::from_femto(2.0),
            Seconds::from_pico(10.0),
        )
        .with_max_load(Farads::from_femto(500.0))])
        .unwrap();
        let back = BufferLibrary::from_text(&lib.to_text()).unwrap();
        let ml = back.get(BufferTypeId::new(0)).max_load().unwrap();
        assert!((ml.femtos() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn text_roundtrip_with_output_slew() {
        let lib = BufferLibrary::new(vec![BufferType::new(
            "b",
            Ohms::new(100.0),
            Farads::from_femto(2.0),
            Seconds::from_pico(10.0),
        )
        .with_output_slew(Seconds::from_pico(15.0))
        .with_max_load(Farads::from_femto(300.0))])
        .unwrap();
        let text = lib.to_text();
        assert!(text.contains("slew=15"), "{text}");
        let back = BufferLibrary::from_text(&text).unwrap();
        let b = back.get(BufferTypeId::new(0));
        assert!((b.output_slew().picos() - 15.0).abs() < 1e-9);
        assert!((b.max_load().unwrap().femtos() - 300.0).abs() < 1e-9);
    }

    /// Regression (NaN ordering satellite): a NaN-producing degenerate
    /// library entry must be rejected at load time with an error — it must
    /// never reach the solvers' comparison-based orderings, which would
    /// panic (or silently misorder) on NaN keys.
    #[test]
    fn nan_entries_rejected_at_load() {
        for bad in [
            "b NaN 1 1 1",
            "b nan 1 1 1",
            "b 100 NaN 1 1",
            "b 100 1 NaN 1",
            "b 100 1 1 NaN",
            "b 100 1 1 1 NaN",
            "b 100 1 1 1 slew=NaN",
        ] {
            let err = BufferLibrary::from_text(bad).unwrap_err();
            assert!(err.contains("NaN") || err.contains("bad"), "{bad}: {err}");
        }
        // Non-finite (but parseable) parameters are caught by validation.
        assert!(BufferLibrary::from_text("b inf 1 1 1").is_err());
    }

    #[test]
    fn negative_output_slew_rejected() {
        let b = BufferType::new(
            "x",
            Ohms::new(100.0),
            Farads::from_femto(1.0),
            Seconds::ZERO,
        )
        .with_output_slew(Seconds::from_pico(-1.0));
        assert!(matches!(
            BufferLibrary::new(vec![b]),
            Err(LibraryError::NegativeOutputSlew { .. })
        ));
    }

    #[test]
    fn from_text_reports_bad_lines() {
        assert!(
            BufferLibrary::from_text("b1 nan_is_fine_but_words_arent 1 1 1")
                .unwrap_err()
                .contains("line 1")
        );
        assert!(BufferLibrary::from_text("onlyname")
            .unwrap_err()
            .contains("missing"));
        assert!(BufferLibrary::from_text("# empty\n\n")
            .unwrap_err()
            .contains("empty"));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = BufferLibrary::paper_synthetic_jittered(8, 5).unwrap();
        let b = BufferLibrary::paper_synthetic_jittered(8, 5).unwrap();
        let c = BufferLibrary::paper_synthetic_jittered(8, 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn costs_grow_with_strength() {
        let lib = BufferLibrary::paper_synthetic(8).unwrap();
        let costs: Vec<f64> = lib.iter().map(|(_, b)| b.cost()).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(costs[0], 1.0);
        assert!(*costs.last().unwrap() > 10.0);
    }
}
