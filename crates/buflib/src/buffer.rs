//! Buffer-type and driver models.

use std::fmt;

use crate::units::{Farads, Ohms, Seconds};

/// Identifier of a buffer type within a [`BufferLibrary`](crate::BufferLibrary).
///
/// Ids are dense indices in library insertion order; they are only meaningful
/// relative to the library that issued them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferTypeId(u32);

impl BufferTypeId {
    /// Creates an id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        BufferTypeId(index as u32)
    }

    /// The dense index of this buffer type in library insertion order.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BufferTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A buffer (repeater) type, the paper's `B_i`.
///
/// The delay of a buffer of type `B_i` driving a downstream capacitance `C`
/// follows the linear model used throughout the van Ginneken family of
/// algorithms:
///
/// ```text
/// d_buf(B_i, C) = K(B_i) + R(B_i) · C
/// ```
///
/// where `K` is the intrinsic delay and `R` the driving resistance. When the
/// buffer is inserted, the capacitance seen upstream becomes its input
/// capacitance `C(B_i)`.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::BufferType;
/// use fastbuf_buflib::units::{Farads, Ohms, Seconds};
///
/// let strong = BufferType::new("bx8", Ohms::new(180.0),
///                              Farads::from_femto(23.0),
///                              Seconds::from_pico(36.4));
/// let d = strong.delay(Farads::from_femto(100.0));
/// assert!((d.picos() - (36.4 + 0.18 * 100.0)).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BufferType {
    name: String,
    driving_resistance: Ohms,
    input_capacitance: Farads,
    intrinsic_delay: Seconds,
    cost: f64,
    max_load: Option<Farads>,
    output_slew: Seconds,
    inverting: bool,
}

impl BufferType {
    /// Creates a buffer type from the three parameters of the linear delay
    /// model. Cost defaults to `1.0` and no load limit is set.
    ///
    /// Validation (positivity, finiteness) is performed when the buffer is
    /// inserted into a [`BufferLibrary`](crate::BufferLibrary).
    pub fn new(
        name: impl Into<String>,
        driving_resistance: Ohms,
        input_capacitance: Farads,
        intrinsic_delay: Seconds,
    ) -> Self {
        BufferType {
            name: name.into(),
            driving_resistance,
            input_capacitance,
            intrinsic_delay,
            cost: 1.0,
            max_load: None,
            output_slew: Seconds::ZERO,
            inverting: false,
        }
    }

    /// Sets the intrinsic output slew of this buffer — the transition time
    /// its output exhibits even when unloaded. Slew-constrained solving
    /// adds it to the `ln 9`-scaled stage delay when checking candidates
    /// driven by this type (see `fastbuf_rctree::delay`). Returns `self`
    /// for chaining.
    #[must_use]
    pub fn with_output_slew(mut self, output_slew: Seconds) -> Self {
        self.output_slew = output_slew;
        self
    }

    /// Marks this type as an inverter (its output has opposite polarity to
    /// its input) and returns `self` for chaining. The plain
    /// [`Solver`](https://docs.rs/fastbuf-core) ignores polarity; the
    /// polarity-aware solver in `fastbuf-core::polarity` honours it.
    #[must_use]
    pub fn with_inverting(mut self, inverting: bool) -> Self {
        self.inverting = inverting;
        self
    }

    /// Sets the cost used by the cost-bounded solver (e.g. area in
    /// arbitrary units) and returns `self` for chaining.
    #[must_use]
    pub fn with_cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the maximum downstream capacitance this buffer may legally drive
    /// and returns `self` for chaining. Candidates exceeding the limit are
    /// not buffered with this type.
    #[must_use]
    pub fn with_max_load(mut self, max_load: Farads) -> Self {
        self.max_load = Some(max_load);
        self
    }

    /// The buffer type's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Driving (output) resistance `R(B_i)`.
    #[inline]
    pub fn driving_resistance(&self) -> Ohms {
        self.driving_resistance
    }

    /// Input (pin) capacitance `C(B_i)` seen by the upstream stage.
    #[inline]
    pub fn input_capacitance(&self) -> Farads {
        self.input_capacitance
    }

    /// Intrinsic delay `K(B_i)`.
    #[inline]
    pub fn intrinsic_delay(&self) -> Seconds {
        self.intrinsic_delay
    }

    /// Cost used by the cost-bounded solver.
    #[inline]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Optional maximum load this buffer may drive.
    #[inline]
    pub fn max_load(&self) -> Option<Farads> {
        self.max_load
    }

    /// Intrinsic output slew (zero unless set with
    /// [`BufferType::with_output_slew`]).
    #[inline]
    pub fn output_slew(&self) -> Seconds {
        self.output_slew
    }

    /// `true` if this type inverts signal polarity.
    #[inline]
    pub fn is_inverting(&self) -> bool {
        self.inverting
    }

    /// Buffer delay driving `load`: `K + R·load`.
    #[inline]
    pub fn delay(&self, load: Farads) -> Seconds {
        self.intrinsic_delay + self.driving_resistance * load
    }
}

impl fmt::Display for BufferType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (R={}, C={}, K={})",
            self.name, self.driving_resistance, self.input_capacitance, self.intrinsic_delay
        )
    }
}

/// The net's source driver.
///
/// The driver is modeled as a resistance `R_d` (plus optional intrinsic
/// delay): the delay contribution at the source is `K_d + R_d · C_root` where
/// `C_root` is the capacitance of the chosen candidate at the root. The slack
/// reported by the solvers already accounts for it.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::Driver;
/// use fastbuf_buflib::units::{Farads, Ohms};
///
/// let drv = Driver::new(Ohms::new(150.0));
/// let d = drv.delay(Farads::from_femto(50.0));
/// assert!((d.picos() - 7.5).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Driver {
    resistance: Ohms,
    intrinsic_delay: Seconds,
}

impl Driver {
    /// Creates a driver with the given output resistance and zero intrinsic
    /// delay.
    pub fn new(resistance: Ohms) -> Self {
        Driver {
            resistance,
            intrinsic_delay: Seconds::ZERO,
        }
    }

    /// Sets the driver's intrinsic delay and returns `self` for chaining.
    #[must_use]
    pub fn with_intrinsic_delay(mut self, intrinsic_delay: Seconds) -> Self {
        self.intrinsic_delay = intrinsic_delay;
        self
    }

    /// Driver output resistance `R_d`.
    #[inline]
    pub fn resistance(&self) -> Ohms {
        self.resistance
    }

    /// Driver intrinsic delay `K_d`.
    #[inline]
    pub fn intrinsic_delay(&self) -> Seconds {
        self.intrinsic_delay
    }

    /// Driver delay when driving `load`: `K_d + R_d·load`.
    #[inline]
    pub fn delay(&self, load: Farads) -> Seconds {
        self.intrinsic_delay + self.resistance * load
    }
}

impl Default for Driver {
    /// An ideal (zero-resistance, zero-delay) driver.
    fn default() -> Self {
        Driver::new(Ohms::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf() -> BufferType {
        BufferType::new(
            "b0",
            Ohms::new(1000.0),
            Farads::from_femto(5.0),
            Seconds::from_pico(30.0),
        )
    }

    #[test]
    fn linear_delay_model() {
        let b = buf();
        let d = b.delay(Farads::from_femto(10.0));
        // 30 ps + 1 kOhm * 10 fF = 30 ps + 10 ps
        assert!((d.picos() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn zero_load_delay_is_intrinsic() {
        assert_eq!(buf().delay(Farads::ZERO), Seconds::from_pico(30.0));
    }

    #[test]
    fn builder_style_setters() {
        let b = buf()
            .with_cost(3.5)
            .with_max_load(Farads::from_femto(200.0));
        assert_eq!(b.cost(), 3.5);
        assert_eq!(b.max_load(), Some(Farads::from_femto(200.0)));
    }

    #[test]
    fn default_cost_is_one_and_no_max_load() {
        assert_eq!(buf().cost(), 1.0);
        assert_eq!(buf().max_load(), None);
        assert_eq!(buf().output_slew(), Seconds::ZERO);
    }

    #[test]
    fn output_slew_setter() {
        let b = buf().with_output_slew(Seconds::from_pico(12.0));
        assert_eq!(b.output_slew(), Seconds::from_pico(12.0));
    }

    #[test]
    fn id_roundtrip_and_display() {
        let id = BufferTypeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "B7");
    }

    #[test]
    fn driver_delay_with_intrinsic() {
        let d = Driver::new(Ohms::new(200.0)).with_intrinsic_delay(Seconds::from_pico(5.0));
        let t = d.delay(Farads::from_femto(10.0));
        assert!((t.picos() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn default_driver_is_ideal() {
        let d = Driver::default();
        assert_eq!(d.delay(Farads::from_femto(1000.0)), Seconds::ZERO);
    }

    #[test]
    fn display_contains_parameters() {
        let s = buf().to_string();
        assert!(s.contains("b0"));
        assert!(s.contains("kOhm"));
    }
}
