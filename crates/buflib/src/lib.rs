//! Buffer-library, driver, and technology models for the `fastbuf`
//! buffer-insertion toolkit.
//!
//! This crate is the foundation of the workspace reproducing
//! *Li & Shi, "An O(bn²) Time Algorithm for Optimal Buffer Insertion with b
//! Buffer Types", DATE 2005*. It provides:
//!
//! * [`units`] — zero-cost newtypes for the physical quantities the
//!   algorithms manipulate ([`Ohms`], [`Farads`], [`Seconds`], [`Microns`])
//!   with dimension-checked arithmetic (`Ohms * Farads -> Seconds`).
//! * [`BufferType`] — a repeater characterized by driving resistance
//!   `R(B_i)`, input capacitance `C(B_i)` and intrinsic delay `K(B_i)`,
//!   following the linear buffer delay model `d = K + R·C_load` used by the
//!   paper.
//! * [`BufferLibrary`] — an immutable, validated collection of buffer types
//!   with the two sorted orders the O(bn²) algorithm needs precomputed:
//!   non-increasing resistance (Lemma 1) and non-decreasing input
//!   capacitance (Theorem 2).
//! * [`BufferSet`] — a small bitset expressing which library types are legal
//!   at a given buffer position (the paper's `f : V_int -> 2^B`).
//! * [`Technology`] — per-micron wire parasitics; the shipped preset mirrors
//!   the TSMC-180nm-class constants of the paper's evaluation
//!   (0.076 Ω/µm, 0.118 fF/µm).
//! * [`cluster`] — buffer-library selection by clustering (the
//!   Alpert et al. DAC 2000 approach the paper cites as the prior remedy for
//!   large libraries).
//!
//! # Example
//!
//! ```
//! use fastbuf_buflib::{BufferLibrary, BufferType, Technology};
//! use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
//!
//! // A two-buffer library: a weak and a strong repeater.
//! let lib = BufferLibrary::new(vec![
//!     BufferType::new("bx1", Ohms::new(7000.0), Farads::from_femto(0.7),
//!                     Seconds::from_pico(29.0)),
//!     BufferType::new("bx8", Ohms::new(180.0), Farads::from_femto(23.0),
//!                     Seconds::from_pico(36.4)),
//! ])?;
//! assert_eq!(lib.len(), 2);
//!
//! // Wire parasitics for 100 µm of metal in the paper's technology.
//! let tech = Technology::tsmc180_like();
//! let (r, c) = tech.wire(Microns::new(100.0));
//! assert!((r.value() - 7.6).abs() < 1e-9);
//! # Ok::<(), fastbuf_buflib::LibraryError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod buffer;
mod bufset;
pub mod cluster;
mod error;
mod library;
mod tech;
pub mod units;

pub use buffer::{BufferType, BufferTypeId, Driver};
pub use bufset::BufferSet;
pub use error::LibraryError;
pub use library::{BufferLibrary, SyntheticLibrarySpec};
pub use tech::Technology;
pub use units::{Farads, Microns, Ohms, Seconds};
