//! Sets of buffer types, used to restrict which library entries are legal at
//! a given buffer position (the paper's `f : V_int -> 2^B`).

use std::fmt;

use crate::buffer::BufferTypeId;

/// A set of [`BufferTypeId`]s backed by a bit vector.
///
/// The set has a fixed *universe size* — the size of the library it refers
/// to — so that complement-style queries ([`BufferSet::is_full`]) are
/// well-defined.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::{BufferSet, BufferTypeId};
///
/// let mut set = BufferSet::empty(8);
/// set.insert(BufferTypeId::new(1));
/// set.insert(BufferTypeId::new(5));
/// assert!(set.contains(BufferTypeId::new(5)));
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.iter().map(|id| id.index()).collect::<Vec<_>>(), vec![1, 5]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BufferSet {
    words: Vec<u64>,
    universe: usize,
}

impl BufferSet {
    /// Creates an empty set over a library of `universe` buffer types.
    pub fn empty(universe: usize) -> Self {
        BufferSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// Creates the full set over a library of `universe` buffer types.
    pub fn full(universe: usize) -> Self {
        let mut set = Self::empty(universe);
        for i in 0..universe {
            set.insert(BufferTypeId::new(i));
        }
        set
    }

    /// The size of the universe (library) this set refers to.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Adds a buffer type to the set.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn insert(&mut self, id: BufferTypeId) {
        assert!(
            id.index() < self.universe,
            "buffer id {} outside universe of size {}",
            id.index(),
            self.universe
        );
        self.words[id.index() / 64] |= 1u64 << (id.index() % 64);
    }

    /// Removes a buffer type from the set.
    pub fn remove(&mut self, id: BufferTypeId) {
        if id.index() < self.universe {
            self.words[id.index() / 64] &= !(1u64 << (id.index() % 64));
        }
    }

    /// `true` if the set contains `id`. Ids outside the universe are never
    /// contained.
    #[inline]
    pub fn contains(&self, id: BufferTypeId) -> bool {
        let i = id.index();
        i < self.universe && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of buffer types in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no buffer type is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if every type in the universe is in the set.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    /// Iterates over the contained ids in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = BufferTypeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(BufferTypeId::new(wi * 64 + b))
                }
            })
        })
    }
}

impl FromIterator<BufferTypeId> for BufferSet {
    /// Collects ids into a set whose universe is just large enough for the
    /// largest id.
    fn from_iter<I: IntoIterator<Item = BufferTypeId>>(iter: I) -> Self {
        let ids: Vec<BufferTypeId> = iter.into_iter().collect();
        let universe = ids.iter().map(|id| id.index() + 1).max().unwrap_or(0);
        let mut set = BufferSet::empty(universe);
        for id in ids {
            set.insert(id);
        }
        set
    }
}

impl fmt::Debug for BufferSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|id| id.index()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = BufferSet::empty(10);
        assert!(e.is_empty());
        assert!(!e.is_full());
        assert_eq!(e.len(), 0);

        let f = BufferSet::full(10);
        assert!(f.is_full());
        assert_eq!(f.len(), 10);
        assert!(f.contains(BufferTypeId::new(9)));
        assert!(!f.contains(BufferTypeId::new(10)));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BufferSet::empty(70); // spans two words
        s.insert(BufferTypeId::new(0));
        s.insert(BufferTypeId::new(69));
        assert!(s.contains(BufferTypeId::new(0)));
        assert!(s.contains(BufferTypeId::new(69)));
        assert_eq!(s.len(), 2);
        s.remove(BufferTypeId::new(0));
        assert!(!s.contains(BufferTypeId::new(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_in_order_across_words() {
        let mut s = BufferSet::empty(130);
        for i in [3usize, 64, 65, 127, 129] {
            s.insert(BufferTypeId::new(i));
        }
        let got: Vec<usize> = s.iter().map(|id| id.index()).collect();
        assert_eq!(got, vec![3, 64, 65, 127, 129]);
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: BufferSet = [2usize, 5, 5, 0]
            .into_iter()
            .map(BufferTypeId::new)
            .collect();
        assert_eq!(s.universe(), 6);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn zero_universe_is_valid() {
        let s = BufferSet::empty(0);
        assert!(s.is_empty());
        assert!(s.is_full()); // vacuously full
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut s = BufferSet::empty(4);
        s.insert(BufferTypeId::new(4));
    }

    #[test]
    fn debug_lists_members() {
        let mut s = BufferSet::empty(8);
        s.insert(BufferTypeId::new(1));
        s.insert(BufferTypeId::new(3));
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }
}
