//! Buffer-library selection by clustering.
//!
//! The paper motivates its O(bn²) algorithm by noting that the prior remedy
//! for very large libraries — reducing the library by clustering similar
//! buffers (Alpert, Gandham, Neves & Quay, *Buffer library selection*,
//! ICCD 2000, reference \[3\] of the paper) — degrades solution quality.
//! This module implements that remedy so the trade-off can be reproduced:
//! cluster a `b = 64` library down to `k = 8` and compare the achieved slack
//! against solving with the full library using the fast algorithm
//! (experiment X3 in `DESIGN.md`).
//!
//! The algorithm is deterministic k-medoids: features are
//! `(ln R, ln C, K)` standardized to zero mean / unit variance; seeding is
//! farthest-point traversal from the global medoid; refinement is Lloyd
//! iteration with medoid recentering.

use crate::buffer::BufferTypeId;
use crate::error::LibraryError;
use crate::library::BufferLibrary;

/// Outcome of clustering a library down to `k` representative types.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// The reduced library containing one representative per cluster,
    /// ordered by non-increasing driving resistance.
    pub library: BufferLibrary,
    /// For each entry of `library`, the id of the original buffer type it
    /// was taken from.
    pub representatives: Vec<BufferTypeId>,
    /// For each original buffer type (by index), the index of the cluster it
    /// was assigned to (positions in `representatives`).
    pub assignment: Vec<usize>,
}

/// Clusters `lib` into `k` groups and returns a reduced library of medoid
/// representatives.
///
/// # Errors
///
/// Returns [`LibraryError::InvalidClusterCount`] unless `1 ≤ k ≤ lib.len()`.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::BufferLibrary;
/// use fastbuf_buflib::cluster::cluster_library;
///
/// let full = BufferLibrary::paper_synthetic(64)?;
/// let reduced = cluster_library(&full, 8)?;
/// assert_eq!(reduced.library.len(), 8);
/// # Ok::<(), fastbuf_buflib::LibraryError>(())
/// ```
pub fn cluster_library(lib: &BufferLibrary, k: usize) -> Result<ClusterResult, LibraryError> {
    let n = lib.len();
    if k == 0 || k > n {
        return Err(LibraryError::InvalidClusterCount {
            requested: k,
            available: n,
        });
    }

    let features = standardized_features(lib);
    let dist = |a: usize, b: usize| -> f64 {
        features[a]
            .iter()
            .zip(&features[b])
            .map(|(x, y)| (x - y) * (x - y))
            .sum()
    };

    // Seed 1: the global medoid (minimizes total distance to all points).
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| {
            let sa: f64 = (0..n).map(|j| dist(a, j)).sum();
            let sb: f64 = (0..n).map(|j| dist(b, j)).sum();
            sa.total_cmp(&sb).then(a.cmp(&b))
        })
        .expect("library is non-empty");
    medoids.push(first);

    // Seeds 2..k: farthest-point traversal (deterministic).
    while medoids.len() < k {
        let next = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by(|&a, &b| {
                let da = medoids
                    .iter()
                    .map(|&m| dist(a, m))
                    .fold(f64::INFINITY, f64::min);
                let db = medoids
                    .iter()
                    .map(|&m| dist(b, m))
                    .fold(f64::INFINITY, f64::min);
                da.total_cmp(&db).then(b.cmp(&a))
            })
            .expect("fewer medoids than points");
        medoids.push(next);
    }

    // Lloyd iterations with medoid recentering.
    let mut assignment = vec![0usize; n];
    for _ in 0..32 {
        let mut changed = false;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist(i, medoids[a])
                        .total_cmp(&dist(i, medoids[b]))
                        .then(a.cmp(&b))
                })
                .unwrap();
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        let mut new_medoids = medoids.clone();
        for (c, new_medoid) in new_medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            *new_medoid = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let sa: f64 = members.iter().map(|&j| dist(a, j)).sum();
                    let sb: f64 = members.iter().map(|&j| dist(b, j)).sum();
                    sa.total_cmp(&sb).then(a.cmp(&b))
                })
                .unwrap();
        }
        if new_medoids == medoids && !changed {
            break;
        }
        medoids = new_medoids;
    }

    // Order representatives by non-increasing resistance for readability.
    medoids.sort_by(|&a, &b| {
        let (ra, rb) = (
            lib.get(BufferTypeId::new(a)).driving_resistance(),
            lib.get(BufferTypeId::new(b)).driving_resistance(),
        );
        rb.value().total_cmp(&ra.value()).then(a.cmp(&b))
    });
    // Re-map assignments to the sorted representative order.
    let pos_of: Vec<usize> = {
        let mut inv = vec![0usize; n];
        for (pos, &m) in medoids.iter().enumerate() {
            inv[m] = pos;
        }
        inv
    };
    // Re-assign every point to its (possibly re-centered) nearest medoid so
    // assignment and medoid list are consistent after sorting.
    let mut final_assignment = vec![0usize; n];
    for (i, slot) in final_assignment.iter_mut().enumerate() {
        *slot = medoids
            .iter()
            .enumerate()
            .min_by(|(_, &ma), (_, &mb)| dist(i, ma).total_cmp(&dist(i, mb)))
            .map(|(pos, _)| pos)
            .unwrap();
        // Medoids always belong to their own cluster.
        if medoids.contains(&i) {
            *slot = pos_of[i];
        }
    }

    let representatives: Vec<BufferTypeId> =
        medoids.iter().map(|&m| BufferTypeId::new(m)).collect();
    let library = lib.subset(&representatives)?;
    Ok(ClusterResult {
        library,
        representatives,
        assignment: final_assignment,
    })
}

/// Standardized `(ln R, ln C, K)` feature vectors.
fn standardized_features(lib: &BufferLibrary) -> Vec<[f64; 3]> {
    let n = lib.len();
    let mut feats: Vec<[f64; 3]> = lib
        .iter()
        .map(|(_, b)| {
            [
                b.driving_resistance().value().ln(),
                // +1 aF floor avoids ln(0) for zero-capacitance test buffers.
                (b.input_capacitance().value() + 1e-18).ln(),
                b.intrinsic_delay().value(),
            ]
        })
        .collect();
    for d in 0..3 {
        let mean = feats.iter().map(|f| f[d]).sum::<f64>() / n as f64;
        let var = feats
            .iter()
            .map(|f| (f[d] - mean) * (f[d] - mean))
            .sum::<f64>()
            / n as f64;
        let sd = var.sqrt().max(1e-12);
        for f in &mut feats {
            f[d] = (f[d] - mean) / sd;
        }
    }
    feats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_requested_size() {
        let full = BufferLibrary::paper_synthetic(64).unwrap();
        let res = cluster_library(&full, 8).unwrap();
        assert_eq!(res.library.len(), 8);
        assert_eq!(res.representatives.len(), 8);
        assert_eq!(res.assignment.len(), 64);
    }

    #[test]
    fn k_equal_n_is_identity_sized() {
        let full = BufferLibrary::paper_synthetic(8).unwrap();
        let res = cluster_library(&full, 8).unwrap();
        assert_eq!(res.library.len(), 8);
        // Every point is its own medoid.
        let mut reps: Vec<usize> = res.representatives.iter().map(|r| r.index()).collect();
        reps.sort_unstable();
        assert_eq!(reps, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn k_one_selects_a_single_representative() {
        let full = BufferLibrary::paper_synthetic(16).unwrap();
        let res = cluster_library(&full, 1).unwrap();
        assert_eq!(res.library.len(), 1);
        assert!(res.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn invalid_counts_rejected() {
        let full = BufferLibrary::paper_synthetic(4).unwrap();
        assert!(matches!(
            cluster_library(&full, 0),
            Err(LibraryError::InvalidClusterCount { .. })
        ));
        assert!(matches!(
            cluster_library(&full, 5),
            Err(LibraryError::InvalidClusterCount { .. })
        ));
    }

    #[test]
    fn medoids_assigned_to_own_cluster() {
        let full = BufferLibrary::paper_synthetic_jittered(32, 9).unwrap();
        let res = cluster_library(&full, 6).unwrap();
        for (pos, rep) in res.representatives.iter().enumerate() {
            assert_eq!(res.assignment[rep.index()], pos);
        }
    }

    #[test]
    fn representatives_cover_strength_spectrum() {
        let full = BufferLibrary::paper_synthetic(64).unwrap();
        let res = cluster_library(&full, 8).unwrap();
        let rs: Vec<f64> = res
            .library
            .iter()
            .map(|(_, b)| b.driving_resistance().value())
            .collect();
        // Sorted non-increasing, spanning most of the original range.
        assert!(rs.windows(2).all(|w| w[0] >= w[1]));
        assert!(rs[0] > 3000.0, "weak end represented: {rs:?}");
        assert!(
            *rs.last().unwrap() < 400.0,
            "strong end represented: {rs:?}"
        );
    }

    #[test]
    fn deterministic() {
        let full = BufferLibrary::paper_synthetic_jittered(24, 3).unwrap();
        let a = cluster_library(&full, 5).unwrap();
        let b = cluster_library(&full, 5).unwrap();
        assert_eq!(a.representatives, b.representatives);
        assert_eq!(a.assignment, b.assignment);
    }
}
