//! Error types for library construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating a
/// [`BufferLibrary`](crate::BufferLibrary).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LibraryError {
    /// The library contains no buffer types where at least one is required.
    Empty,
    /// A buffer parameter is NaN or infinite.
    NonFiniteParameter {
        /// Name of the offending buffer type.
        buffer: String,
        /// Which parameter was non-finite (`"resistance"`, `"capacitance"`, ...).
        field: &'static str,
    },
    /// Driving resistance must be strictly positive.
    NonPositiveResistance {
        /// Name of the offending buffer type.
        buffer: String,
    },
    /// Input capacitance must be non-negative.
    NegativeCapacitance {
        /// Name of the offending buffer type.
        buffer: String,
    },
    /// Intrinsic delay must be non-negative.
    NegativeIntrinsicDelay {
        /// Name of the offending buffer type.
        buffer: String,
    },
    /// Intrinsic output slew must be non-negative.
    NegativeOutputSlew {
        /// Name of the offending buffer type.
        buffer: String,
    },
    /// Buffer cost must be non-negative and finite.
    InvalidCost {
        /// Name of the offending buffer type.
        buffer: String,
    },
    /// Two buffer types share the same name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A requested cluster count is invalid (zero or above the library size).
    InvalidClusterCount {
        /// Requested number of clusters.
        requested: usize,
        /// Available number of buffer types.
        available: usize,
    },
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::Empty => write!(f, "buffer library is empty"),
            LibraryError::NonFiniteParameter { buffer, field } => {
                write!(f, "buffer `{buffer}` has a non-finite {field}")
            }
            LibraryError::NonPositiveResistance { buffer } => {
                write!(f, "buffer `{buffer}` has a non-positive driving resistance")
            }
            LibraryError::NegativeCapacitance { buffer } => {
                write!(f, "buffer `{buffer}` has a negative input capacitance")
            }
            LibraryError::NegativeIntrinsicDelay { buffer } => {
                write!(f, "buffer `{buffer}` has a negative intrinsic delay")
            }
            LibraryError::NegativeOutputSlew { buffer } => {
                write!(f, "buffer `{buffer}` has a negative output slew")
            }
            LibraryError::InvalidCost { buffer } => {
                write!(f, "buffer `{buffer}` has a negative or non-finite cost")
            }
            LibraryError::DuplicateName { name } => {
                write!(f, "buffer name `{name}` appears more than once")
            }
            LibraryError::InvalidClusterCount {
                requested,
                available,
            } => {
                write!(
                    f,
                    "cannot cluster {available} buffer types into {requested} clusters"
                )
            }
        }
    }
}

impl Error for LibraryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = LibraryError::Empty;
        assert_eq!(e.to_string(), "buffer library is empty");
        let e = LibraryError::DuplicateName { name: "x4".into() };
        assert!(e.to_string().contains("x4"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<LibraryError>();
    }
}
