//! Interconnect technology parameters.

use crate::units::{Farads, Microns, Ohms};

/// Per-micron wire parasitics of an interconnect technology.
///
/// Wires in `fastbuf` are described by lumped resistance and capacitance;
/// `Technology` converts geometric wire lengths into those lumps. The
/// [`Technology::tsmc180_like`] preset reproduces the constants of the
/// paper's evaluation section: 0.076 Ω/µm and 0.118 fF/µm.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::Technology;
/// use fastbuf_buflib::units::Microns;
///
/// let tech = Technology::tsmc180_like();
/// let (r, c) = tech.wire(Microns::new(1000.0));
/// assert!((r.value() - 76.0).abs() < 1e-9);
/// assert!((c.femtos() - 118.0).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Technology {
    resistance_per_micron: Ohms,
    capacitance_per_micron: Farads,
}

impl Technology {
    /// Creates a technology from per-micron wire resistance and capacitance.
    pub fn new(resistance_per_micron: Ohms, capacitance_per_micron: Farads) -> Self {
        Technology {
            resistance_per_micron,
            capacitance_per_micron,
        }
    }

    /// The 180 nm-class technology used in the paper's evaluation:
    /// wire resistance 0.076 Ω/µm, wire capacitance 0.118 fF/µm.
    pub fn tsmc180_like() -> Self {
        Technology::new(Ohms::new(0.076), Farads::from_femto(0.118))
    }

    /// A scaled 45 nm-class technology (thinner, more resistive wires),
    /// useful for exercising different RC regimes in tests and examples.
    pub fn nm45_like() -> Self {
        Technology::new(Ohms::new(0.38), Farads::from_femto(0.08))
    }

    /// Wire resistance per micron.
    #[inline]
    pub fn resistance_per_micron(&self) -> Ohms {
        self.resistance_per_micron
    }

    /// Wire capacitance per micron.
    #[inline]
    pub fn capacitance_per_micron(&self) -> Farads {
        self.capacitance_per_micron
    }

    /// Lumped resistance and capacitance of a wire of the given length.
    #[inline]
    pub fn wire(&self, length: Microns) -> (Ohms, Farads) {
        (
            self.resistance_per_micron * length.value(),
            self.capacitance_per_micron * length.value(),
        )
    }
}

impl Default for Technology {
    /// Defaults to the paper's 180 nm-class constants.
    fn default() -> Self {
        Technology::tsmc180_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let t = Technology::tsmc180_like();
        assert!((t.resistance_per_micron().value() - 0.076).abs() < 1e-12);
        assert!((t.capacitance_per_micron().femtos() - 0.118).abs() < 1e-12);
    }

    #[test]
    fn wire_scales_linearly() {
        let t = Technology::tsmc180_like();
        let (r1, c1) = t.wire(Microns::new(10.0));
        let (r2, c2) = t.wire(Microns::new(20.0));
        assert!((r2.value() - 2.0 * r1.value()).abs() < 1e-12);
        assert!((c2.value() - 2.0 * c1.value()).abs() < 1e-24);
    }

    #[test]
    fn zero_length_wire_has_no_parasitics() {
        let (r, c) = Technology::default().wire(Microns::ZERO);
        assert_eq!(r, Ohms::ZERO);
        assert_eq!(c, Farads::ZERO);
    }

    #[test]
    fn nm45_is_more_resistive() {
        let a = Technology::tsmc180_like();
        let b = Technology::nm45_like();
        assert!(b.resistance_per_micron() > a.resistance_per_micron());
    }
}
