//! Zero-cost newtypes for the physical quantities used across `fastbuf`.
//!
//! All quantities are stored internally as `f64` in SI base units (ohms,
//! farads, seconds) or microns for geometry. The newtypes exist to make unit
//! errors (passing a capacitance where a resistance is expected, forgetting a
//! femto/pico scale factor) compile-time errors at API boundaries, while the
//! hot inner loops of the solver extract raw `f64`s via [`Ohms::value`] and
//! friends.
//!
//! Dimension-checked arithmetic is provided where the buffer-insertion
//! algebra needs it, most importantly `Ohms * Farads -> Seconds` (the RC
//! product at the heart of the Elmore delay model).
//!
//! ```
//! use fastbuf_buflib::units::{Farads, Ohms, Seconds};
//!
//! let r = Ohms::new(180.0);
//! let c = Farads::from_femto(23.0);
//! let rc: Seconds = r * c;
//! assert!((rc.picos() - 4.14).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Formats `value` with an engineering (power-of-1000) SI prefix.
fn eng(f: &mut fmt::Formatter<'_>, value: f64, unit: &str) -> fmt::Result {
    if value == 0.0 {
        return write!(f, "0 {unit}");
    }
    if !value.is_finite() {
        return write!(f, "{value} {unit}");
    }
    const PREFIXES: [(&str, f64); 11] = [
        ("a", 1e-18),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("m", 1e-3),
        ("", 1.0),
        ("k", 1e3),
        ("M", 1e6),
        ("G", 1e9),
        ("T", 1e12),
    ];
    let mag = value.abs();
    let (prefix, scale) = PREFIXES
        .iter()
        .rev()
        .find(|(_, s)| mag >= *s)
        .copied()
        .unwrap_or(PREFIXES[0]);
    write!(f, "{:.4} {}{}", value / scale, prefix, unit)
}

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a quantity from a raw value in base units.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `value` is NaN. Infinities are
            /// permitted (they are used as sentinels for "no constraint").
            #[inline]
            pub fn new(value: f64) -> Self {
                debug_assert!(!value.is_nan(), concat!(stringify!($name), " must not be NaN"));
                Self(value)
            }

            /// Returns the raw value in base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                eng(f, self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// Electrical resistance in ohms.
    ///
    /// Used for buffer/driver output resistance and wire resistance.
    Ohms,
    "Ohm"
);

unit_newtype!(
    /// Electrical capacitance in farads.
    ///
    /// Used for sink loads, buffer input pins, and wire capacitance. Most
    /// on-chip values are femtofarads; see [`Farads::from_femto`].
    Farads,
    "F"
);

unit_newtype!(
    /// Time in seconds.
    ///
    /// Used for delays, required arrival times, and slack. Most on-chip
    /// values are picoseconds; see [`Seconds::from_pico`].
    Seconds,
    "s"
);

unit_newtype!(
    /// Length in microns (µm), the customary unit of on-chip geometry.
    Microns,
    "um"
);

impl Farads {
    /// Creates a capacitance from a value in femtofarads (1e-15 F).
    #[inline]
    pub fn from_femto(ff: f64) -> Self {
        Self::new(ff * 1e-15)
    }

    /// Returns the capacitance in femtofarads.
    #[inline]
    pub fn femtos(self) -> f64 {
        self.value() * 1e15
    }

    /// Creates a capacitance from a value in picofarads (1e-12 F).
    #[inline]
    pub fn from_pico(pf: f64) -> Self {
        Self::new(pf * 1e-12)
    }
}

impl Seconds {
    /// Creates a time from a value in picoseconds (1e-12 s).
    #[inline]
    pub fn from_pico(ps: f64) -> Self {
        Self::new(ps * 1e-12)
    }

    /// Returns the time in picoseconds.
    #[inline]
    pub fn picos(self) -> f64 {
        self.value() * 1e12
    }

    /// Creates a time from a value in nanoseconds (1e-9 s).
    #[inline]
    pub fn from_nano(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }
}

impl Mul<Farads> for Ohms {
    type Output = Seconds;
    /// The RC product: `Ohms * Farads = Seconds`.
    #[inline]
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds::new(self.value() * rhs.value())
    }
}

impl Mul<Ohms> for Farads {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Ohms) -> Seconds {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_product_is_seconds() {
        let t = Ohms::new(1000.0) * Farads::from_femto(10.0);
        assert!((t.picos() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn commutative_rc_product() {
        let a = Ohms::new(42.0) * Farads::new(1e-14);
        let b = Farads::new(1e-14) * Ohms::new(42.0);
        assert_eq!(a, b);
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Seconds::from_pico(100.0);
        let b = Seconds::from_pico(40.0);
        assert!(((a - b).picos() - 60.0).abs() < 1e-9);
        assert!(((a + b).picos() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_multiplication_both_sides() {
        let c = Farads::from_femto(2.0);
        assert_eq!((c * 3.0).femtos().round(), 6.0);
        assert_eq!((3.0 * c).femtos().round(), 6.0);
    }

    #[test]
    fn ratio_is_dimensionless() {
        let ratio: f64 = Ohms::new(100.0) / Ohms::new(50.0);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    fn ordering_works() {
        assert!(Ohms::new(180.0) < Ohms::new(7000.0));
        assert!(Seconds::from_pico(-5.0) < Seconds::ZERO);
    }

    #[test]
    fn min_max_abs() {
        let a = Seconds::from_pico(-3.0);
        let b = Seconds::from_pico(1.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.abs(), Seconds::from_pico(3.0));
    }

    #[test]
    fn sum_of_quantities() {
        let total: Farads = (1..=4).map(|i| Farads::from_femto(i as f64)).sum();
        assert!((total.femtos() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_engineering_notation() {
        assert_eq!(format!("{}", Farads::from_femto(23.0)), "23.0000 fF");
        assert_eq!(format!("{}", Ohms::new(7000.0)), "7.0000 kOhm");
        assert_eq!(format!("{}", Seconds::from_pico(36.4)), "36.4000 ps");
        assert_eq!(format!("{}", Seconds::ZERO), "0 s");
        assert_eq!(format!("{}", Microns::new(100.0)), "100.0000 um");
    }

    #[test]
    fn display_negative_and_sub_atto() {
        assert_eq!(format!("{}", Seconds::from_pico(-1.5)), "-1.5000 ps");
        // Below the smallest prefix we fall back to atto.
        let tiny = Seconds::new(1e-21);
        assert_eq!(format!("{tiny}"), "0.0010 as");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Ohms::default(), Ohms::ZERO);
        assert_eq!(Farads::default(), Farads::ZERO);
    }

    #[test]
    fn neg_and_assign_ops() {
        let mut q = Seconds::from_pico(10.0);
        q += Seconds::from_pico(5.0);
        q -= Seconds::from_pico(3.0);
        assert!((q.picos() - 12.0).abs() < 1e-9);
        assert!(((-q).picos() + 12.0).abs() < 1e-9);
    }

    #[test]
    fn infinity_is_permitted_as_sentinel() {
        let inf = Seconds::new(f64::INFINITY);
        assert!(!inf.is_finite());
        assert!(inf > Seconds::from_pico(1e12));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    #[cfg(debug_assertions)]
    fn nan_rejected_in_debug() {
        let _ = Ohms::new(f64::NAN);
    }
}
