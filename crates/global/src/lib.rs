//! Design-level resource-constrained buffering: a Lagrangian pricing loop
//! that allocates a *shared* buffer-site budget across a fleet of nets.
//!
//! The per-net DP (Li & Shi, DATE 2005) solves one net optimally; a chip
//! allocates the same physical buffer sites to many nets at once. Albrecht
//! et al. (arXiv:cs/0508045) show the chip-level problem is tractable as a
//! multicommodity pricing loop, and this crate implements exactly that
//! decomposition:
//!
//! 1. every shared site carries a **price** (seconds of slack charged for
//!    inserting a buffer there);
//! 2. each net is re-solved *optimally* against current prices — the
//!    priced subproblem stays exact because a per-node price folds into
//!    the DP as extra intrinsic delay
//!    ([`SolverOptions::site_prices`](fastbuf_core::SolverOptions));
//! 3. per-site usage is measured against a [`SiteCapacityMap`], and
//!    overused sites get their prices raised by a deterministic
//!    subgradient schedule;
//! 4. repeat until no site is over capacity (or an iteration cap).
//!
//! Re-pricing a site is a *localized* edit: between iterations each net
//! keeps a warm per-net cache
//! ([`IncrementalSolver`](fastbuf_incremental::IncrementalSolver)), so an
//! iteration only pays for the nets whose site prices actually changed —
//! and within those, only the changed nodes' root paths.
//!
//! Results are **bit-identical at every worker count and across warm vs
//! scratch inner solves**: nets are independent given the price vector,
//! usage aggregation and price updates run in fixed net/site order on the
//! coordinating thread, and the step schedule is a closed form of the
//! iteration index (`tests/global_equivalence.rs` pins all of this).
//!
//! # Quick start
//!
//! ```
//! use fastbuf_buflib::BufferLibrary;
//! use fastbuf_global::{GlobalNet, GlobalSolver, SiteCapacityMap};
//! use fastbuf_netgen::SharedSuiteSpec;
//!
//! let spec = SharedSuiteSpec::default();
//! let fleet: Vec<GlobalNet> = spec
//!     .build()
//!     .into_iter()
//!     .enumerate()
//!     .map(|(i, net)| GlobalNet::new(format!("shared/{i}"), net.tree, net.site_of))
//!     .collect();
//! let lib = BufferLibrary::paper_synthetic(8)?;
//! let capacity = SiteCapacityMap::uniform(spec.pool_sites, 2);
//!
//! let outcome = GlobalSolver::new(fleet, lib, capacity).solve()?;
//! assert!(outcome.report.feasible);
//! for site in &outcome.report.utilization {
//!     assert!(site.usage <= site.capacity);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::error::Error;
use std::fmt;

use fastbuf_incremental::EcoError;
use fastbuf_rctree::RoutingTree;

mod report;
mod solver;

pub use report::{GlobalReport, IterationRow, SiteUse};
pub use solver::{GlobalOptions, GlobalOutcome, GlobalSolver};

/// Capacities of the shared physical buffer sites, indexed by site id
/// `0..sites`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteCapacityMap {
    caps: Vec<u32>,
}

impl SiteCapacityMap {
    /// A pool of `sites` sites, every one with the same `capacity`.
    pub fn uniform(sites: u32, capacity: u32) -> Self {
        SiteCapacityMap {
            caps: vec![capacity; sites as usize],
        }
    }

    /// A pool of `sites` sites with `default` capacity, overridden by
    /// `(site, capacity)` pairs — the shape
    /// [`parse_capacity`](fastbuf_netgen::parse_capacity) returns.
    ///
    /// # Errors
    ///
    /// [`GlobalError::UnknownSite`] when a pair names a site `>= sites`.
    pub fn from_pairs(sites: u32, default: u32, pairs: &[(u32, u32)]) -> Result<Self, GlobalError> {
        let mut map = SiteCapacityMap::uniform(sites, default);
        for &(site, cap) in pairs {
            if site >= sites {
                return Err(GlobalError::UnknownSite {
                    net: None,
                    site,
                    pool: sites,
                });
            }
            map.caps[site as usize] = cap;
        }
        Ok(map)
    }

    /// Number of sites in the pool.
    pub fn sites(&self) -> u32 {
        self.caps.len() as u32
    }

    /// Capacity of one site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn capacity(&self, site: u32) -> u32 {
        self.caps[site as usize]
    }

    /// Sum of all capacities.
    pub fn total(&self) -> u64 {
        self.caps.iter().map(|&c| c as u64).sum()
    }

    /// The capacities as a slice, indexed by site id.
    pub fn as_slice(&self) -> &[u32] {
        &self.caps
    }
}

/// One net of the fleet: a routing tree plus its node→shared-site mapping.
#[derive(Clone, Debug)]
pub struct GlobalNet {
    /// Display name (report rows, JSON).
    pub name: String,
    /// The net's routing tree.
    pub tree: RoutingTree,
    /// `site_of[node.index()]` = the shared site id the node occupies, or
    /// `None` for unmapped nodes. Must be exactly `tree.node_count()`
    /// long; mapped ids must lie inside the capacity pool. Mappings on
    /// nodes that are not buffer sites are inert (the DP never places
    /// buffers there).
    pub site_of: Vec<Option<u32>>,
}

impl GlobalNet {
    /// Bundles a tree with its shared-site mapping.
    pub fn new(name: impl Into<String>, tree: RoutingTree, site_of: Vec<Option<u32>>) -> Self {
        GlobalNet {
            name: name.into(),
            tree,
            site_of,
        }
    }
}

/// Errors from [`GlobalSolver::solve`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum GlobalError {
    /// The fleet has no nets.
    EmptyFleet,
    /// A net's `site_of` length does not match its tree's node count.
    SiteMapLength {
        /// Fleet index of the offending net.
        net: usize,
        /// `tree.node_count()`.
        expected: usize,
        /// `site_of.len()`.
        got: usize,
    },
    /// A mapping (or capacity override) names a site outside the pool.
    UnknownSite {
        /// Fleet index of the offending net (`None` for capacity files).
        net: Option<usize>,
        /// The out-of-range site id.
        site: u32,
        /// The pool size it must be below.
        pool: u32,
    },
    /// The options are unusable (`max_iters == 0`, a non-positive step,
    /// or `growth < 1`).
    InvalidOptions(String),
    /// A price push into a per-net solver was rejected — unreachable for
    /// validated fleets, surfaced rather than panicked on.
    Eco(EcoError),
}

impl fmt::Display for GlobalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalError::EmptyFleet => write!(f, "the fleet has no nets"),
            GlobalError::SiteMapLength { net, expected, got } => write!(
                f,
                "net {net}: site map has {got} entries but the tree has {expected} nodes"
            ),
            GlobalError::UnknownSite { net, site, pool } => match net {
                Some(net) => write!(
                    f,
                    "net {net}: site id {site} is outside the pool (0..{pool})"
                ),
                None => write!(f, "site id {site} is outside the pool (0..{pool})"),
            },
            GlobalError::InvalidOptions(msg) => write!(f, "invalid global options: {msg}"),
            GlobalError::Eco(e) => write!(f, "price update rejected: {e}"),
        }
    }
}

impl Error for GlobalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GlobalError::Eco(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EcoError> for GlobalError {
    fn from(e: EcoError) -> Self {
        GlobalError::Eco(e)
    }
}
