//! The Lagrangian outer loop.

use std::cmp::Reverse;
use std::sync::Mutex;
use std::time::Instant;

use crossbeam::channel;
use fastbuf_buflib::units::Seconds;
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Solution, SolverOptions};
use fastbuf_incremental::IncrementalSolver;
use fastbuf_rctree::NodeId;

use crate::report::{GlobalReport, IterationRow, SiteUse};
use crate::{GlobalError, GlobalNet, SiteCapacityMap};

/// Configuration of a [`GlobalSolver`].
#[derive(Clone, Debug)]
pub struct GlobalOptions {
    /// Iteration cap: a fleet that has not become feasible after this many
    /// pricing rounds is reported with `feasible = false` (never an
    /// endless loop, never a panic).
    pub max_iters: usize,
    /// Worker threads for the per-net inner solves (default 1). Results
    /// are bit-identical at every count: nets are independent given the
    /// price vector, and all cross-net state (usage, prices) is updated
    /// in fixed net/site order on the coordinating thread.
    pub workers: usize,
    /// First subgradient step in seconds-per-unit-overuse (default 1 ps).
    pub step0: Seconds,
    /// Geometric growth of the step per iteration (default 1.25); the
    /// iteration-`t` step is `step0 · growth^t`, a closed form of `t`
    /// alone, so the schedule cannot depend on timing or thread order.
    pub growth: f64,
    /// Keep per-net incremental caches warm across iterations (default
    /// `true`): a re-priced net re-solves only the changed root paths.
    /// `false` flushes every net's cache each iteration (from-scratch
    /// inner solves) — bit-identical results, strictly more work; the
    /// `global_convergence` bench measures the gap.
    pub warm: bool,
    /// Inner per-net solve configuration (algorithm, delay model, kernel,
    /// …). `site_prices` on this struct is ignored — the loop owns the
    /// price vector.
    pub solver: SolverOptions,
}

impl Default for GlobalOptions {
    fn default() -> Self {
        GlobalOptions {
            max_iters: 64,
            workers: 1,
            step0: Seconds::from_pico(1.0),
            growth: 1.25,
            warm: true,
            solver: SolverOptions::default(),
        }
    }
}

/// What [`GlobalSolver::solve`] returns: the report plus the final
/// per-net solutions (fleet order).
#[derive(Debug)]
pub struct GlobalOutcome {
    /// Convergence, utilization, and per-iteration history.
    pub report: GlobalReport,
    /// The final priced solution of every net, in fleet order.
    pub solutions: Vec<Solution>,
}

/// Mutable per-net state, one [`Mutex`] per net so workers can solve
/// disjoint nets concurrently (each index is sent to exactly one worker,
/// so locks are uncontended — the `Mutex` exists for `Sync`, like the
/// batch layer's result slots).
struct NetState {
    solver: IncrementalSolver,
    solution: Option<Solution>,
    dirty: bool,
}

/// The design-level solver; see the [crate docs](crate) for the loop.
#[derive(Debug)]
pub struct GlobalSolver {
    nets: Vec<GlobalNet>,
    library: BufferLibrary,
    capacity: SiteCapacityMap,
    options: GlobalOptions,
}

impl GlobalSolver {
    /// Creates a solver over `nets` contending for `capacity`, all using
    /// `library`. Validation happens in [`GlobalSolver::solve`] so
    /// construction never fails.
    pub fn new(nets: Vec<GlobalNet>, library: BufferLibrary, capacity: SiteCapacityMap) -> Self {
        GlobalSolver {
            nets,
            library,
            capacity,
            options: GlobalOptions::default(),
        }
    }

    /// Replaces all options.
    #[must_use]
    pub fn with_options(mut self, options: GlobalOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the iteration cap.
    #[must_use]
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.options.max_iters = max_iters;
        self
    }

    /// Sets the inner-solve worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.options.workers = workers;
        self
    }

    /// Warm per-net caches across iterations (`true`, default) or
    /// from-scratch inner solves every iteration (`false`).
    #[must_use]
    pub fn warm(mut self, warm: bool) -> Self {
        self.options.warm = warm;
        self
    }

    /// The fleet.
    pub fn nets(&self) -> &[GlobalNet] {
        &self.nets
    }

    /// Runs the pricing loop to feasibility or the iteration cap.
    ///
    /// # Errors
    ///
    /// [`GlobalError::EmptyFleet`] / [`GlobalError::SiteMapLength`] /
    /// [`GlobalError::UnknownSite`] for malformed fleets,
    /// [`GlobalError::InvalidOptions`] for unusable options. Hitting the
    /// iteration cap is **not** an error: the report says
    /// `feasible = false` and utilization shows where capacity is still
    /// exceeded.
    pub fn solve(&self) -> Result<GlobalOutcome, GlobalError> {
        let start = Instant::now();
        self.validate()?;
        let pool = self.capacity.sites() as usize;
        let caps = self.capacity.as_slice();
        let opts = &self.options;

        // Per-net warm solvers. `site_prices` from the caller's inner
        // options is dropped: the loop owns pricing.
        let mut inner = opts.solver.clone();
        inner.site_prices = None;
        let states: Vec<Mutex<NetState>> = self
            .nets
            .iter()
            .map(|net| {
                Mutex::new(NetState {
                    solver: IncrementalSolver::new(net.tree.clone(), self.library.clone())
                        .with_options(inner.clone()),
                    solution: None,
                    dirty: true,
                })
            })
            .collect();

        let mut prices = vec![0.0f64; pool];
        let mut usage = vec![0u32; pool];
        let mut history: Vec<IterationRow> = Vec::new();
        let mut feasible = false;
        let mut total_resolved = 0u64;

        for iter in 0..opts.max_iters {
            // 1. Re-solve every net whose prices changed (all, on iter 0).
            let resolved = self.solve_dirty(&states);
            total_resolved += resolved as u64;

            // 2. Aggregate usage in fleet order. Counts are integers, so
            //    the order is irrelevant to the sums — fixing it anyway
            //    keeps the loop order-deterministic by inspection.
            usage.iter_mut().for_each(|u| *u = 0);
            for (net, state) in self.nets.iter().zip(&states) {
                let state = state.lock().expect("net state lock");
                let solution = state.solution.as_ref().expect("solved this iteration");
                for p in &solution.placements {
                    if let Some(site) = net.site_of[p.node.index()] {
                        usage[site as usize] += 1;
                    }
                }
            }

            // 3. Measure overuse.
            let mut sites_overused = 0usize;
            let mut total_overuse = 0u64;
            for (u, &c) in usage.iter().zip(caps) {
                if *u > c {
                    sites_overused += 1;
                    total_overuse += (*u - c) as u64;
                }
            }
            let max_price = prices.iter().copied().fold(0.0f64, f64::max);
            history.push(IterationRow {
                iter,
                nets_resolved: resolved,
                sites_overused,
                total_overuse,
                max_price: Seconds::new(max_price),
            });
            if sites_overused == 0 {
                feasible = true;
                break;
            }

            // 4. Monotone subgradient step on the overused sites:
            //    λ_v += step_t · (usage_v − cap_v), step_t = step0·growth^t.
            //    Prices never fall — a growing-step schedule with decrease
            //    steps can oscillate forever; the monotone schedule trades
            //    a little slack for guaranteed escape from every overused
            //    site (see docs/ALGORITHM.md §10).
            let step = opts.step0.value() * opts.growth.powi(iter as i32);
            let mut changed = vec![false; pool];
            for s in 0..pool {
                if usage[s] > caps[s] {
                    prices[s] += step * (usage[s] - caps[s]) as f64;
                    changed[s] = true;
                }
            }

            // 5. Push the new prices into the affected nets (fleet order).
            //    A net none of whose mapped sites changed keeps its cache
            //    fully clean and is skipped next iteration.
            for (net, state) in self.nets.iter().zip(&states) {
                let changes: Vec<(NodeId, Seconds)> = net
                    .site_of
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, site)| {
                        site.filter(|&s| changed[s as usize])
                            .map(|s| (NodeId::new(idx), Seconds::new(prices[s as usize])))
                    })
                    .collect();
                if changes.is_empty() {
                    continue;
                }
                let mut state = state.lock().expect("net state lock");
                if state.solver.set_site_prices(&changes)? > 0 {
                    state.dirty = true;
                }
            }
        }

        // Final bookkeeping from the last iteration's solutions.
        let solutions: Vec<Solution> = states
            .iter()
            .map(|s| {
                s.lock()
                    .expect("net state lock")
                    .solution
                    .take()
                    .expect("every net was solved at least once")
            })
            .collect();
        let total_buffers: usize = solutions.iter().map(|s| s.placements.len()).sum();
        let total_slack = solutions.iter().map(|s| s.slack.value()).sum::<f64>();
        let worst_slack = solutions
            .iter()
            .map(|s| s.slack.value())
            .fold(f64::INFINITY, f64::min);
        let utilization: Vec<SiteUse> = (0..pool)
            .filter(|&s| usage[s] > 0 || prices[s] > 0.0 || caps[s] == 0)
            .map(|s| SiteUse {
                site: s as u32,
                usage: usage[s],
                capacity: caps[s],
                price: Seconds::new(prices[s]),
            })
            .collect();

        Ok(GlobalOutcome {
            report: GlobalReport {
                feasible,
                iterations: history.len(),
                nets: self.nets.len(),
                pool_sites: self.capacity.sites(),
                workers: opts.workers.max(1),
                warm: opts.warm,
                total_buffers,
                total_resolved,
                total_slack: Seconds::new(total_slack),
                worst_slack: Seconds::new(worst_slack),
                utilization,
                history,
                elapsed: start.elapsed(),
            },
            solutions,
        })
    }

    /// Solves every dirty net (largest first across the worker pool, like
    /// `fastbuf-batch`), returning how many were re-solved. Every per-net
    /// solve is deterministic and nets share no mutable state, so the
    /// worker count cannot affect any result bit.
    fn solve_dirty(&self, states: &[Mutex<NetState>]) -> usize {
        let warm = self.options.warm;
        let mut order: Vec<usize> = (0..states.len())
            .filter(|&i| states[i].lock().expect("net state lock").dirty)
            .collect();
        order.sort_by_key(|&i| (Reverse(self.nets[i].tree.node_count()), i));
        if order.is_empty() {
            return 0;
        }
        let resolved = order.len();
        let workers = self.options.workers.clamp(1, resolved);

        let solve_one = |state: &Mutex<NetState>| {
            let mut state = state.lock().expect("net state lock");
            if !warm {
                state.solver.flush();
            }
            let solution = state.solver.solve();
            state.solution = Some(solution);
            state.dirty = false;
        };

        if workers <= 1 {
            for &i in &order {
                solve_one(&states[i]);
            }
            return resolved;
        }
        let (tx, rx) = channel::unbounded::<usize>();
        for &i in &order {
            tx.send(i).expect("receiver is alive");
        }
        drop(tx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = rx.clone();
                scope.spawn(move || {
                    while let Ok(i) = rx.recv() {
                        solve_one(&states[i]);
                    }
                });
            }
        });
        resolved
    }

    fn validate(&self) -> Result<(), GlobalError> {
        if self.nets.is_empty() {
            return Err(GlobalError::EmptyFleet);
        }
        if self.options.max_iters == 0 {
            return Err(GlobalError::InvalidOptions(
                "max_iters must be at least 1".into(),
            ));
        }
        // NaN-safe: a NaN step0 fails the `>` and lands here too.
        if self.options.step0.value().partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(GlobalError::InvalidOptions(
                "step0 must be strictly positive".into(),
            ));
        }
        if !(self.options.growth >= 1.0 && self.options.growth.is_finite()) {
            return Err(GlobalError::InvalidOptions(
                "growth must be finite and >= 1".into(),
            ));
        }
        let pool = self.capacity.sites();
        for (i, net) in self.nets.iter().enumerate() {
            if net.site_of.len() != net.tree.node_count() {
                return Err(GlobalError::SiteMapLength {
                    net: i,
                    expected: net.tree.node_count(),
                    got: net.site_of.len(),
                });
            }
            for site in net.site_of.iter().flatten() {
                if *site >= pool {
                    return Err(GlobalError::UnknownSite {
                        net: Some(i),
                        site: *site,
                        pool,
                    });
                }
            }
        }
        Ok(())
    }
}
