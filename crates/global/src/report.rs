//! Convergence reporting for the pricing loop.

use std::time::Duration;

use fastbuf_api::json::json_f64;
use fastbuf_buflib::units::Seconds;

/// Final state of one shared site (only sites that saw usage, carry a
/// price, or have zero capacity are reported — idle unconstrained sites
/// are noise).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteUse {
    /// Shared site id.
    pub site: u32,
    /// Buffers placed on the site in the final solutions.
    pub usage: u32,
    /// The site's capacity.
    pub capacity: u32,
    /// The site's final Lagrangian price.
    pub price: Seconds,
}

/// One row of the iteration history.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationRow {
    /// Iteration index (0-based).
    pub iter: usize,
    /// Nets re-solved this iteration (all of them on iteration 0; after
    /// that only nets whose mapped prices changed).
    pub nets_resolved: usize,
    /// Sites over capacity after this iteration's solves.
    pub sites_overused: usize,
    /// Total units of overuse across all sites.
    pub total_overuse: u64,
    /// Largest price in the vector entering this iteration's solves.
    pub max_price: Seconds,
}

/// What the pricing loop did: convergence, utilization, and history.
#[derive(Clone, Debug)]
pub struct GlobalReport {
    /// `true` when the final solutions respect every site capacity.
    pub feasible: bool,
    /// Iterations actually run (≤ `max_iters`).
    pub iterations: usize,
    /// Fleet size.
    pub nets: usize,
    /// Shared-site pool size.
    pub pool_sites: u32,
    /// Worker threads used for the inner solves.
    pub workers: usize,
    /// Whether per-net caches stayed warm across iterations.
    pub warm: bool,
    /// Buffers placed across the fleet in the final solutions.
    pub total_buffers: usize,
    /// Inner solves summed over all iterations (the warm-cache win shows
    /// up here: later iterations re-solve only re-priced nets).
    pub total_resolved: u64,
    /// Sum of final per-net slacks.
    pub total_slack: Seconds,
    /// Worst final per-net slack.
    pub worst_slack: Seconds,
    /// Final per-site state (see [`SiteUse`] for which sites appear).
    pub utilization: Vec<SiteUse>,
    /// One row per iteration.
    pub history: Vec<IterationRow>,
    /// Wall-clock time of the whole loop.
    pub elapsed: Duration,
}

impl GlobalReport {
    /// Serializes the report as pretty-printed JSON using the shared
    /// hand-rolled serializer conventions (no serde; escaped strings,
    /// plain JSON numbers, non-finite values as `null`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512 + self.utilization.len() * 64);
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"feasible\": {},\n",
            if self.feasible { "true" } else { "false" }
        ));
        s.push_str(&format!("  \"iterations\": {},\n", self.iterations));
        s.push_str(&format!("  \"nets\": {},\n", self.nets));
        s.push_str(&format!("  \"pool_sites\": {},\n", self.pool_sites));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!(
            "  \"warm\": {},\n",
            if self.warm { "true" } else { "false" }
        ));
        s.push_str(&format!("  \"total_buffers\": {},\n", self.total_buffers));
        s.push_str(&format!("  \"total_resolved\": {},\n", self.total_resolved));
        s.push_str(&format!(
            "  \"total_slack_ps\": {},\n",
            json_f64(self.total_slack.picos())
        ));
        s.push_str(&format!(
            "  \"worst_slack_ps\": {},\n",
            json_f64(self.worst_slack.picos())
        ));
        s.push_str(&format!(
            "  \"elapsed_ms\": {},\n",
            json_f64(self.elapsed.as_secs_f64() * 1e3)
        ));
        s.push_str("  \"utilization\": [\n");
        for (i, u) in self.utilization.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"site\": {}, \"usage\": {}, \"capacity\": {}, \"price_ps\": {}}}{}\n",
                u.site,
                u.usage,
                u.capacity,
                json_f64(u.price.picos()),
                if i + 1 < self.utilization.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"history\": [\n");
        for (i, row) in self.history.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"iter\": {}, \"nets_resolved\": {}, \"sites_overused\": {}, \
                 \"total_overuse\": {}, \"max_price_ps\": {}}}{}\n",
                row.iter,
                row.nets_resolved,
                row.sites_overused,
                row.total_overuse,
                json_f64(row.max_price.picos()),
                if i + 1 < self.history.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// A one-paragraph human summary for CLI text output.
    pub fn summary(&self) -> String {
        let verdict = if self.feasible {
            "feasible".to_owned()
        } else {
            let still: u64 = self
                .history
                .last()
                .map(|row| row.total_overuse)
                .unwrap_or(0);
            format!("NOT feasible ({still} units of overuse remain)")
        };
        format!(
            "{} after {} iteration(s): {} nets over {} shared sites, \
             {} buffers placed, {} inner solves total, worst slack {} ps, \
             total slack {} ps",
            verdict,
            self.iterations,
            self.nets,
            self.pool_sites,
            self.total_buffers,
            self.total_resolved,
            fmt_ps(self.worst_slack.picos()),
            fmt_ps(self.total_slack.picos()),
        )
    }
}

/// Compact human formatting for picosecond quantities in [`GlobalReport::summary`].
fn fmt_ps(ps: f64) -> String {
    if ps.abs() >= 100.0 {
        format!("{ps:.1}")
    } else {
        format!("{ps:.3}")
    }
}
