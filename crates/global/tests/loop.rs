//! Integration tests of the pricing loop's dynamics on generated
//! shared-site fleets (the cross-worker/warm-vs-scratch bit-identity and
//! oracle tests live at the workspace root in `tests/global_equivalence.rs`).

use fastbuf_buflib::BufferLibrary;
use fastbuf_global::{GlobalError, GlobalNet, GlobalSolver, SiteCapacityMap};
use fastbuf_netgen::SharedSuiteSpec;

fn fleet(spec: &SharedSuiteSpec) -> Vec<GlobalNet> {
    spec.build()
        .into_iter()
        .enumerate()
        .map(|(i, net)| GlobalNet::new(format!("shared/{i}"), net.tree, net.site_of))
        .collect()
}

fn lib() -> BufferLibrary {
    BufferLibrary::paper_synthetic(8).expect("paper synthetic library")
}

#[test]
fn contended_fleet_starts_infeasible_and_converges() {
    let spec = SharedSuiteSpec::default();
    let outcome = GlobalSolver::new(
        fleet(&spec),
        lib(),
        SiteCapacityMap::uniform(spec.pool_sites, 1),
    )
    .solve()
    .expect("valid fleet");
    let report = &outcome.report;
    assert!(report.feasible, "loop must converge: {}", report.summary());
    assert!(
        report.history[0].sites_overused > 0,
        "the default fleet must actually be contended at zero prices \
         (otherwise the loop tests nothing): {}",
        report.summary()
    );
    assert!(report.iterations >= 2);
    // Capacity is respected site by site.
    for u in &report.utilization {
        assert!(u.usage <= u.capacity, "site {} overused", u.site);
    }
    // Warm caches: later iterations re-solve only re-priced nets.
    assert!(
        report.total_resolved < (report.iterations * report.nets) as u64 || report.iterations == 1,
        "warm loop should skip nets whose prices never changed: {} inner \
         solves over {} iterations x {} nets",
        report.total_resolved,
        report.iterations,
        report.nets
    );
    // Every net still has a solution and the report's totals match them.
    assert_eq!(outcome.solutions.len(), report.nets);
    let buffers: usize = outcome.solutions.iter().map(|s| s.placements.len()).sum();
    assert_eq!(buffers, report.total_buffers);
}

#[test]
fn ample_capacity_finishes_in_one_iteration() {
    let spec = SharedSuiteSpec::default();
    let outcome = GlobalSolver::new(
        fleet(&spec),
        lib(),
        SiteCapacityMap::uniform(
            spec.pool_sites,
            spec.nets as u32 * spec.sites_per_net as u32,
        ),
    )
    .solve()
    .expect("valid fleet");
    assert!(outcome.report.feasible);
    assert_eq!(outcome.report.iterations, 1);
    assert!(outcome
        .report
        .utilization
        .iter()
        .all(|u| u.price.value() == 0.0));
}

#[test]
fn zero_capacity_everywhere_prices_out_every_buffer() {
    // With zero capacity, feasibility means *no* buffers on shared sites at
    // all; prices must grow past the full buffering benefit of every net.
    // All sites are shared here, so the final solutions are unbuffered.
    let spec = SharedSuiteSpec {
        nets: 3,
        ..SharedSuiteSpec::default()
    };
    let outcome = GlobalSolver::new(
        fleet(&spec),
        lib(),
        SiteCapacityMap::uniform(spec.pool_sites, 0),
    )
    .solve()
    .expect("valid fleet");
    assert!(
        outcome.report.feasible,
        "the growing step schedule must eventually price everything out: {}",
        outcome.report.summary()
    );
    assert_eq!(outcome.report.total_buffers, 0);
}

#[test]
fn iteration_cap_reports_infeasible_without_error() {
    let spec = SharedSuiteSpec::default();
    let outcome = GlobalSolver::new(
        fleet(&spec),
        lib(),
        SiteCapacityMap::uniform(spec.pool_sites, 1),
    )
    .max_iters(1)
    .solve()
    .expect("hitting the cap is not an error");
    assert!(!outcome.report.feasible);
    assert_eq!(outcome.report.iterations, 1);
    assert!(outcome.report.history[0].total_overuse > 0);
}

#[test]
fn degenerate_inputs_return_typed_errors() {
    let spec = SharedSuiteSpec::default();
    let cap = SiteCapacityMap::uniform(spec.pool_sites, 2);

    assert_eq!(
        GlobalSolver::new(Vec::new(), lib(), cap.clone())
            .solve()
            .unwrap_err(),
        GlobalError::EmptyFleet
    );

    let mut short = fleet(&spec);
    short[2].site_of.pop();
    match GlobalSolver::new(short, lib(), cap.clone())
        .solve()
        .unwrap_err()
    {
        GlobalError::SiteMapLength { net: 2, .. } => {}
        other => panic!("expected SiteMapLength for net 2, got {other:?}"),
    }

    let mut wild = fleet(&spec);
    let idx = wild[1].site_of.iter().position(Option::is_some).unwrap();
    wild[1].site_of[idx] = Some(spec.pool_sites + 7);
    match GlobalSolver::new(wild, lib(), cap.clone())
        .solve()
        .unwrap_err()
    {
        GlobalError::UnknownSite {
            net: Some(1), site, ..
        } => {
            assert_eq!(site, spec.pool_sites + 7)
        }
        other => panic!("expected UnknownSite for net 1, got {other:?}"),
    }

    assert!(matches!(
        GlobalSolver::new(fleet(&spec), lib(), cap.clone())
            .max_iters(0)
            .solve()
            .unwrap_err(),
        GlobalError::InvalidOptions(_)
    ));

    assert!(matches!(
        SiteCapacityMap::from_pairs(4, 1, &[(9, 2)]).unwrap_err(),
        GlobalError::UnknownSite {
            net: None,
            site: 9,
            pool: 4
        }
    ));
}
