//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`) generating
//!   `#[test]` functions that run a property over many random cases;
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges and tuples, plus [`collection::vec`];
//! * the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test PRNG (seeded from the test name), and there is **no
//! shrinking** — a failing case panics immediately and prints its case
//! number, which reproduces exactly on re-run.

#![deny(missing_docs)]

pub mod test_runner {
    //! The per-test state: configuration and the deterministic PRNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is tested with.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic PRNG handed to strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// A runner whose stream is a pure function of `name`, so every
        /// test draws the same inputs on every run.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRunner { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Prints the failing case number if a property body panics, so the
    /// failure is attributable (the stream is deterministic, so the same
    /// case fails on re-run).
    #[derive(Debug)]
    pub struct CaseGuard<'a> {
        name: &'a str,
        case: u32,
    }

    impl<'a> CaseGuard<'a> {
        /// Arms the guard for `case` of test `name`.
        pub fn new(name: &'a str, case: u32) -> Self {
            CaseGuard { name, case }
        }
    }

    impl Drop for CaseGuard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest: property `{}` failed at case {} (deterministic; re-run reproduces)",
                    self.name, self.case
                );
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRunner;
    use std::ops::Range;

    /// Something that can generate values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.map)(self.source.new_value(runner))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (runner.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, runner: &mut TestRunner) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + runner.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn new_value(&self, runner: &mut TestRunner) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + (runner.unit_f64() as f32) * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(runner),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (runner.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec(..)`).
        pub use crate::collection;
    }
}

/// Asserts a property holds, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two expressions are equal (property form of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two expressions differ (property form of `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that draws inputs from the strategies and runs the
/// body for `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pname:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __runner = $crate::test_runner::TestRunner::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pname =
                    $crate::strategy::Strategy::new_value(&($strat), &mut __runner);)+
                let _guard = $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                $body
            }
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges honour their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        /// Tuple strategies + prop_map compose.
        #[test]
        fn map_composes(pair in (1u64..5, 1u64..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..25).contains(&pair));
        }

        /// Collection sizes honour their range; `mut` patterns work.
        #[test]
        fn vec_strategy(mut v in prop::collection::vec(0usize..100, 0..7)) {
            prop_assert!(v.len() < 7);
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        use crate::test_runner::TestRunner;
        let mut a = TestRunner::deterministic("alpha");
        let mut b = TestRunner::deterministic("alpha");
        let mut c = TestRunner::deterministic("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
