//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API this workspace uses:
//! [`criterion_group!`] / [`criterion_main!`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`] and [`Criterion::bench_function`],
//! and [`BenchmarkId`]. Timing is a simple median-of-samples report (one
//! warm-up run, then `sample_size` timed runs) printed to stdout — no
//! statistics engine, no HTML reports, but the same source compiles and
//! `cargo bench` produces usable numbers.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value blocker re-exported for compatibility (prefer
/// `std::hint::black_box` in new code).
pub use std::hint::black_box;

/// Entry point collecting benchmark registrations.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; this stand-in samples a fixed count
    /// rather than a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; warm-up is always a single run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group (`function_name/parameter`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timer handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    warmed: bool,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then one timed sample per
    /// invocation (the harness calls this repeatedly).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if !self.warmed {
            black_box(routine());
            self.warmed = true;
        }
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_one<F>(label: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        warmed: false,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "{label:<48} median {} over {} samples",
        fmt_duration(median),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Bundles benchmark functions into one runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring criterion's
/// macro of the same name. Command-line arguments (`--bench`, filters)
/// are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(5).measurement_time(Duration::from_secs(1));
            g.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
                b.iter(|| {
                    runs += 1;
                    n * n
                })
            });
            g.finish();
        }
        // 5 samples + 1 warm-up.
        assert_eq!(runs, 6);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("hull", 100).label, "hull/100");
        assert_eq!(BenchmarkId::from_parameter("b8").label, "b8");
    }
}
