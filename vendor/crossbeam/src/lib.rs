//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Provides the one facility this workspace uses: an unbounded MPMC
//! [`channel`] whose [`channel::Receiver`] is clonable, so a pool of
//! worker threads can pull work items from a shared queue.

#![deny(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer channels (crossbeam-channel subset).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel; clonable, so multiple
    /// workers can compete for items.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent item back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `item`, waking one waiting receiver.
        ///
        /// # Errors
        ///
        /// This unbounded stand-in never fails while a receiver exists; it
        /// keeps the `Result` signature of crossbeam for drop-in use.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item is available or every sender is dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and
        /// disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .expect("channel lock poisoned");
            }
        }

        /// Takes an item without blocking, if one is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_consumes_every_item_once() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let counts = std::sync::Mutex::new(vec![0usize; 100]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let counts = &counts;
                scope.spawn(move || {
                    while let Ok(i) = rx.recv() {
                        counts.lock().unwrap()[i] += 1;
                    }
                });
            }
        });
        assert!(counts.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
