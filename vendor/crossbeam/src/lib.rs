//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Provides the facilities this workspace uses: MPMC [`channel`]s —
//! [`channel::unbounded`] for fire-and-forget fan-out, and
//! [`channel::bounded`] whose full-queue blocking `send` gives the
//! server its in-flight backpressure — with clonable
//! [`channel::Receiver`]s, so a pool of worker threads can pull work
//! items from a shared queue.

#![deny(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer channels (crossbeam-channel subset).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
        /// Signaled when a bounded queue frees a slot (never waited on by
        /// unbounded channels).
        space: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// `usize::MAX` = unbounded.
        capacity: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel; clonable, so multiple
    /// workers can compete for items.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent item back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    /// Creates a bounded channel holding at most `capacity` items:
    /// [`Sender::send`] blocks while the queue is full, so producers are
    /// throttled to the consumers' pace (backpressure). A capacity of 0
    /// is rounded up to 1 (this stand-in has no rendezvous mode).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(capacity.max(1))
    }

    impl<T> Sender<T> {
        /// Enqueues `item`, waking one waiting receiver. On a bounded
        /// channel this blocks while the queue is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] (returning the item) once every receiver is
        /// gone — including while blocked on a full queue.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            while state.items.len() >= state.capacity {
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
                state = self
                    .shared
                    .space
                    .wait(state)
                    .expect("channel lock poisoned");
            }
            if state.receivers == 0 {
                return Err(SendError(item));
            }
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item is available or every sender is dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and
        /// disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .expect("channel lock poisoned");
            }
        }

        /// Takes an item without blocking, if one is ready.
        pub fn try_recv(&self) -> Option<T> {
            let item = self
                .shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .items
                .pop_front();
            if item.is_some() {
                self.shared.space.notify_one();
            }
            item
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            state.receivers -= 1;
            let disconnected = state.receivers == 0;
            drop(state);
            if disconnected {
                // Senders blocked on a full bounded queue must observe the
                // disconnect instead of sleeping forever.
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_consumes_every_item_once() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let counts = std::sync::Mutex::new(vec![0usize; 100]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let counts = &counts;
                scope.spawn(move || {
                    while let Ok(i) = rx.recv() {
                        counts.lock().unwrap()[i] += 1;
                    }
                });
            }
        });
        assert!(counts.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn bounded_send_blocks_until_a_slot_frees() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;

        let (tx, rx) = channel::bounded::<usize>(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        let sent = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let sent = &sent;
            scope.spawn(move || {
                tx.send(2).unwrap(); // blocks: queue is full
                sent.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(
                sent.load(Ordering::SeqCst),
                0,
                "send went through while full"
            );
            assert_eq!(rx.recv(), Ok(0)); // frees a slot, unblocks the sender
        });
        assert_eq!(sent.load(Ordering::SeqCst), 1);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_send_errors_when_receivers_are_gone() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.send(1).unwrap();
        let blocked = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(rx); // wakes the blocked sender with an error
        assert_eq!(blocked.join().unwrap(), Err(channel::SendError(2)));
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
