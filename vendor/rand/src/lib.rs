//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges. The generator is
//! xoshiro256++ seeded through SplitMix64, so streams are deterministic,
//! well distributed, and stable across platforms and releases — which the
//! seeded net generators rely on.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Generates a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can be sampled uniformly (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
signed_int_sample_range!(i32 => u32, i64 => u64, isize => usize);

/// Standard pseudo-random number generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(2.0f64..41.0);
            assert!((2.0..41.0).contains(&f));
            let g = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let v = rng.gen_range(0u64..=5);
            assert!(v <= 5);
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
