#!/usr/bin/env bash
# Runs every example to completion in release mode; any non-zero exit
# fails the script. CI runs this to keep the examples working; it is also
# the quickest local end-to-end sanity check.
set -euo pipefail
cd "$(dirname "$0")/.."

examples=$(find examples -maxdepth 1 -name '*.rs' -exec basename {} .rs \; | sort)
for ex in $examples; do
    echo "=== example: $ex"
    cargo run --release --quiet --example "$ex"
done
echo "=== all $(echo "$examples" | wc -w) examples passed"
