//! CTS pipeline equivalence and oracle suite.
//!
//! Two contracts of the skew-aware recursion (`fastbuf::skew`):
//!
//! 1. **No-bound bit-identity.** With no skew bound, the arrival windows
//!    are pure passengers: the `(q, c)` decisions must be *bit-identical*
//!    to the plain solver on every algorithm, under both candidate
//!    kernels, at every intra-net worker count.
//! 2. **Oracle exactness.** On tiny topologies (≤ 6 sites) the unbounded
//!    optimum must match exhaustive enumeration, the reported skew must
//!    match the forward-measured skew of the chosen placements, and every
//!    bounded solve flagged feasible must actually meet its bound without
//!    beating the enumerated feasible optimum.

use fastbuf::netgen::{build_topology, CtsPlacementSpec, CtsTopologySpec};
use fastbuf::prelude::*;
use fastbuf::rctree::{elmore, NodeId, RoutingTree};

fn cts_tree(sinks: usize, seed: u64, pitch: Option<f64>) -> RoutingTree {
    let placements = CtsPlacementSpec {
        sinks,
        seed,
        ..CtsPlacementSpec::default()
    }
    .generate();
    let spec = CtsTopologySpec {
        site_pitch: pitch.map(Microns::new),
        ..CtsTopologySpec::default()
    };
    build_topology(&placements, &spec).unwrap().tree
}

/// Forward-measures the sink-to-sink skew of a placement set.
fn measured_skew(tree: &RoutingTree, lib: &BufferLibrary, pairs: &[(NodeId, BufferTypeId)]) -> f64 {
    let report = elmore::evaluate(tree, lib, pairs).unwrap();
    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
    for &(n, s) in &report.sink_slacks {
        let arrival = match tree.kind(n) {
            NodeKind::Sink {
                required_arrival, ..
            } => required_arrival.value() - s.value(),
            _ => unreachable!(),
        };
        lo = lo.min(arrival);
        hi = hi.max(arrival);
    }
    hi - lo
}

#[test]
fn unbounded_recursion_is_bit_identical_across_kernels_and_workers() {
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let nets = [
        ("cts/64", cts_tree(64, 1, Some(400.0))),
        ("cts/33-unsegmented", cts_tree(33, 9, None)),
        ("htree/4", fastbuf::netgen::h_tree(4)),
        (
            "caterpillar/12",
            fastbuf::netgen::caterpillar_net(12, Microns::new(700.0), Microns::new(150.0)),
        ),
    ];
    for (name, tree) in &nets {
        for algo in Algorithm::ALL {
            let skewed = SkewSolver::new(tree, &lib).algorithm(algo).solve();
            assert!(skewed.skew_ok, "{name}/{algo}: no bound, always ok");
            for kernel in [Kernel::Reference, Kernel::Slab] {
                for workers in [1usize, 2, 4] {
                    let plain = Solver::new(tree, &lib)
                        .algorithm(algo)
                        .kernel(kernel)
                        .intra_net_workers(workers)
                        .solve();
                    assert_eq!(
                        skewed.slack.value().to_bits(),
                        plain.slack.value().to_bits(),
                        "{name}/{algo}/{kernel:?}@{workers}: slack bits diverged"
                    );
                    assert_eq!(
                        skewed.root_load.value().to_bits(),
                        plain.root_load.value().to_bits(),
                        "{name}/{algo}/{kernel:?}@{workers}: load bits diverged"
                    );
                    assert_eq!(
                        skewed.placements, plain.placements,
                        "{name}/{algo}/{kernel:?}@{workers}: placements diverged"
                    );
                }
            }
        }
    }
}

/// Enumerates every assignment, returning `(best_slack_ps, rows)` where
/// each row is `(slack_ps, skew_ps)` of one legal assignment.
fn enumerate(tree: &RoutingTree, lib: &BufferLibrary) -> (f64, Vec<(f64, f64)>) {
    let sites: Vec<NodeId> = tree.buffer_sites().collect();
    let choices = lib.len() + 1;
    let total = choices.pow(sites.len() as u32);
    assert!(total <= 200_000, "oracle domain too large: {total}");
    let mut best = f64::NEG_INFINITY;
    let mut rows = Vec::with_capacity(total);
    for code in 0..total {
        let mut c = code;
        let mut pairs = Vec::new();
        for &site in &sites {
            let pick = c % choices;
            c /= choices;
            if pick > 0 {
                pairs.push((site, BufferTypeId::new(pick - 1)));
            }
        }
        let report = elmore::evaluate(tree, lib, &pairs).unwrap();
        let slack = report.slack.picos();
        let skew = measured_skew(tree, lib, &pairs) * 1e12;
        best = best.max(slack);
        rows.push((slack, skew));
    }
    (best, rows)
}

fn oracle_trees() -> Vec<(String, RoutingTree)> {
    let mut nets = Vec::new();
    // Merge-tap-only CTS topologies: 3 sinks → 4 sites, 4 sinks → 6.
    for (sinks, seed) in [(2usize, 4u64), (3, 2), (3, 5), (4, 3), (4, 11)] {
        nets.push((format!("cts/{sinks}@{seed}"), cts_tree(sinks, seed, None)));
    }
    nets
}

#[test]
fn tiny_topologies_match_exhaustive_enumeration() {
    let lib = BufferLibrary::paper_synthetic(2).unwrap();
    for (name, tree) in oracle_trees() {
        assert!(
            tree.buffer_site_count() <= 6,
            "{name}: oracle wants ≤6 sites"
        );
        let (true_best, rows) = enumerate(&tree, &lib);

        // Unbounded: the DP finds the enumerated optimum, and its reported
        // skew is the forward-measured skew of its own placements.
        let sol = SkewSolver::new(&tree, &lib).solve();
        assert!(
            (sol.slack.picos() - true_best).abs() < 1e-6,
            "{name}: DP {} vs enumerated {}",
            sol.slack.picos(),
            true_best
        );
        let dp_skew = measured_skew(&tree, &lib, &sol.placement_pairs()) * 1e12;
        assert!(
            (sol.skew.picos() - dp_skew).abs() < 1e-6,
            "{name}: reported skew {} vs measured {}",
            sol.skew.picos(),
            dp_skew
        );

        // Bounded sweep over enumerated skew levels: feasible-flagged
        // solutions really meet the bound and never beat the enumerated
        // feasible optimum.
        let mut bounds: Vec<f64> = rows.iter().map(|&(_, skew)| skew).collect();
        bounds.push(0.0);
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        for &bound_ps in bounds.iter().take(12) {
            let bounded = SkewSolver::new(&tree, &lib)
                .max_skew(Some(Seconds::from_pico(bound_ps)))
                .solve();
            let measured = measured_skew(&tree, &lib, &bounded.placement_pairs()) * 1e12;
            let feasible_best = rows
                .iter()
                .filter(|&&(_, skew)| skew <= bound_ps + 1e-6)
                .map(|&(slack, _)| slack)
                .fold(f64::NEG_INFINITY, f64::max);
            if bounded.skew_ok {
                assert!(
                    measured <= bound_ps + 1e-6,
                    "{name} bound {bound_ps}: flagged ok but measured {measured}"
                );
                assert!(
                    bounded.slack.picos() <= feasible_best + 1e-6,
                    "{name} bound {bound_ps}: DP {} beats enumerated feasible optimum {}",
                    bounded.slack.picos(),
                    feasible_best
                );
            } else {
                // Infeasibility is conservative (the width prune is safe
                // but the `(q, c)` dominance is a projection); the
                // fallback must still report its skew honestly.
                assert!(
                    (bounded.skew.picos() - measured).abs() < 1e-6,
                    "{name} bound {bound_ps}: fallback skew misreported"
                );
            }
        }

        // A bound at the unbounded optimum's own skew is always feasible
        // and bit-identical: window width is monotone along the recursion
        // (invariant under wire/buffer, grows only at merges), so none of
        // the optimum's ancestor candidates exceed the bound, and the
        // `(q, c)` decisions are untouched by the width prune.
        let at_own = SkewSolver::new(&tree, &lib)
            .max_skew(Some(Seconds::from_pico(sol.skew.picos() + 1e-9)))
            .solve();
        assert!(at_own.skew_ok, "{name}: own-skew bound must be feasible");
        assert_eq!(
            at_own.slack.value().to_bits(),
            sol.slack.value().to_bits(),
            "{name}: own-skew bound changed the optimum"
        );
        assert_eq!(at_own.placements, sol.placements, "{name}");
    }
}

/// The api objective rides the same recursion: `Objective::SkewTarget`
/// with no bound is bit-identical to `Objective::MaxSlack` on a full-size
/// CTS topology, and its verification (slack *and* skew re-measured)
/// passes.
#[test]
fn api_skew_objective_matches_max_slack_end_to_end() {
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let session = Session::new(lib);
    let tree = cts_tree(64, 1, Some(400.0));
    let skewed = session
        .request(&tree)
        .objective(Objective::SkewTarget { max_skew: None })
        .solve()
        .unwrap();
    let plain = session.request(&tree).solve().unwrap();
    let (s, p) = (
        match &skewed.scenarios[0].result {
            ScenarioResult::Skew(s) => s,
            other => panic!("expected Skew, got {other:?}"),
        },
        plain.solution().unwrap(),
    );
    assert_eq!(s.slack.value().to_bits(), p.slack.value().to_bits());
    assert_eq!(s.placements, p.placements);
    skewed.verify(&tree, session.library()).unwrap();
}
