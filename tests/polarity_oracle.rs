//! Exhaustive oracle for the polarity-aware solver: enumerate every
//! assignment from a mixed buffer/inverter library, keep only those whose
//! inversion parity satisfies every sink, and compare the best feasible
//! slack against the two-list DP.

use fastbuf::polarity::{check_polarity, Polarity, PolaritySolver};
use fastbuf::prelude::*;
use fastbuf::rctree::{elmore, NodeId, RoutingTree};

fn mixed_library() -> BufferLibrary {
    BufferLibrary::new(vec![
        BufferType::new(
            "buf",
            Ohms::new(900.0),
            Farads::from_femto(4.0),
            Seconds::from_pico(32.0),
        ),
        BufferType::new(
            "inv",
            Ohms::new(700.0),
            Farads::from_femto(5.0),
            Seconds::from_pico(18.0),
        )
        .with_inverting(true),
    ])
    .unwrap()
}

/// Best feasible slack over all assignments, or None if infeasible.
fn brute_force(tree: &RoutingTree, lib: &BufferLibrary, negated: &[NodeId]) -> Option<f64> {
    let sites: Vec<NodeId> = tree.buffer_sites().collect();
    let choices = lib.len() + 1;
    let total = choices.pow(sites.len() as u32);
    assert!(total <= 200_000, "domain too large: {total}");
    let mut best: Option<f64> = None;
    for code in 0..total {
        let mut c = code;
        let mut placements = Vec::new();
        for &site in &sites {
            let pick = c % choices;
            c /= choices;
            if pick > 0 {
                placements.push((site, BufferTypeId::new(pick - 1)));
            }
        }
        if check_polarity(tree, lib, &placements, negated).is_err() {
            continue;
        }
        let report = elmore::evaluate(tree, lib, &placements).unwrap();
        let s = report.slack.picos();
        best = Some(best.map_or(s, |b: f64| b.max(s)));
    }
    best
}

fn nets() -> Vec<(String, RoutingTree, Vec<NodeId>)> {
    use fastbuf::netgen::RandomNetSpec;
    let mut out = Vec::new();
    // Lines with 2..6 sites; negate the sink in half the cases.
    for sites in 2..=6usize {
        let tree = fastbuf::netgen::line_net(Microns::new(1400.0 * sites as f64), sites);
        let sink = tree.sinks().next().unwrap();
        out.push((format!("line/{sites}/pos"), tree.clone(), vec![]));
        out.push((format!("line/{sites}/neg"), tree, vec![sink]));
    }
    // Small random multi-pin nets, first sink negated.
    for seed in 0..6u64 {
        let tree = RandomNetSpec {
            sinks: 3,
            seed,
            die: Microns::new(2200.0),
            site_pitch: Some(Microns::new(800.0)),
            ..RandomNetSpec::default()
        }
        .build();
        if tree.buffer_site_count() > 7 {
            continue;
        }
        let first_sink = tree.sinks().next().unwrap();
        out.push((format!("random/{seed}/pos"), tree.clone(), vec![]));
        out.push((format!("random/{seed}/neg"), tree, vec![first_sink]));
    }
    out
}

#[test]
fn polarity_dp_matches_exhaustive_enumeration() {
    let lib = mixed_library();
    for (name, tree, negated) in nets() {
        let brute = brute_force(&tree, &lib, &negated);
        let mut solver = PolaritySolver::new(&tree, &lib);
        for &s in &negated {
            solver.require(s, Polarity::Negative).unwrap();
        }
        match (solver.solve(), brute) {
            (Ok(sol), Some(best)) => {
                assert!(
                    (sol.slack.picos() - best).abs() < 1e-6,
                    "{name}: DP {} vs brute {best}",
                    sol.slack.picos()
                );
                sol.verify_with(&tree, &lib, &negated)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            }
            (Err(_), None) => {} // both infeasible: fine
            (dp, brute) => panic!("{name}: feasibility mismatch: dp={dp:?} brute={brute:?}"),
        }
    }
}

#[test]
fn polarity_oracle_detects_infeasibility_without_inverters() {
    let buf_only = BufferLibrary::new(vec![BufferType::new(
        "buf",
        Ohms::new(900.0),
        Farads::from_femto(4.0),
        Seconds::from_pico(32.0),
    )])
    .unwrap();
    let tree = fastbuf::netgen::line_net(Microns::new(4000.0), 3);
    let sink = tree.sinks().next().unwrap();
    assert_eq!(brute_force(&tree, &buf_only, &[sink]), None);
    let mut solver = PolaritySolver::new(&tree, &buf_only);
    solver.require(sink, Polarity::Negative).unwrap();
    assert!(solver.solve().is_err());
}

#[test]
fn polarity_solver_agrees_across_algorithms_on_random_nets() {
    use fastbuf::netgen::RandomNetSpec;
    let lib = BufferLibrary::paper_synthetic_mixed(10).unwrap();
    for seed in 0..8u64 {
        let tree = RandomNetSpec {
            sinks: 14,
            seed,
            site_pitch: Some(Microns::new(200.0)),
            ..RandomNetSpec::default()
        }
        .build();
        let negated: Vec<NodeId> = tree.sinks().take(2).collect();
        let solve = |algo| {
            let mut s = PolaritySolver::new(&tree, &lib).algorithm(algo);
            for &n in &negated {
                s.require(n, Polarity::Negative).unwrap();
            }
            s.solve().unwrap()
        };
        let a = solve(Algorithm::Lillis);
        let b = solve(Algorithm::LiShi);
        assert!(
            (a.slack.picos() - b.slack.picos()).abs() < 1e-6,
            "seed {seed}: {} vs {}",
            a.slack,
            b.slack
        );
        b.verify_with(&tree, &lib, &negated).unwrap();
    }
}
