//! Property-based tests of the dynamic program.
//!
//! Nets are drawn from the seeded generators (proptest shrinks over the
//! seed/size parameters); libraries over random parameter ranges. The
//! properties are the load-bearing invariants of the reproduction:
//! algorithm agreement, oracle consistency, and the exact algebraic
//! behaviour of slack under RAT shifts.

use proptest::prelude::*;

use fastbuf::netgen::{RandomNetSpec, RatPolicy};
use fastbuf::prelude::*;
use fastbuf::rctree::RoutingTree;

fn arb_library() -> impl Strategy<Value = BufferLibrary> {
    (2usize..12, 0u64..1000)
        .prop_map(|(b, seed)| BufferLibrary::paper_synthetic_jittered(b, seed).expect("b >= 2"))
}

fn arb_net() -> impl Strategy<Value = RoutingTree> {
    (1usize..30, 0u64..1000, 80.0f64..600.0).prop_map(|(sinks, seed, pitch)| {
        RandomNetSpec {
            sinks,
            seed,
            die: Microns::new(1500.0 + 40.0 * sinks as f64),
            site_pitch: Some(Microns::new(pitch)),
            ..RandomNetSpec::default()
        }
        .build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1: the O(bn²) algorithm loses nothing vs the O(b²n²) scan.
    #[test]
    fn lishi_equals_lillis(tree in arb_net(), lib in arb_library()) {
        let a = Solver::new(&tree, &lib).algorithm(Algorithm::Lillis).solve();
        let b = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
        let tol = 1e-9 * a.slack.picos().abs().max(1.0);
        prop_assert!((a.slack.picos() - b.slack.picos()).abs() <= tol,
            "lillis {} vs lishi {}", a.slack, b.slack);
    }

    /// Predicted slack is always achievable: forward Elmore re-evaluation
    /// of the reconstructed placements reproduces it.
    #[test]
    fn solutions_always_verify(tree in arb_net(), lib in arb_library()) {
        for algo in Algorithm::ALL {
            let sol = Solver::new(&tree, &lib).algorithm(algo).solve();
            prop_assert!(sol.verify(&tree, &lib).is_ok(), "{algo} failed verification");
        }
    }

    /// The published permanent pruning never *beats* the exact optimum.
    #[test]
    fn permanent_is_one_sided(tree in arb_net(), lib in arb_library()) {
        let exact = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
        let perm = Solver::new(&tree, &lib).algorithm(Algorithm::LiShiPermanent).solve();
        prop_assert!(perm.slack.picos() <= exact.slack.picos() + 1e-6);
    }

    /// Shifting every sink's RAT by δ shifts the optimal slack by exactly δ
    /// (the DP is affine in RAT), and the placements stay optimal.
    #[test]
    fn slack_is_affine_in_rat(
        sinks in 1usize..25,
        seed in 0u64..500,
        delta_ps in -500.0f64..500.0,
        lib in arb_library(),
    ) {
        let mk = |extra: f64| {
            RandomNetSpec {
                sinks,
                seed,
                rat: RatPolicy::Constant(Seconds::from_pico(1000.0 + extra)),
                site_pitch: Some(Microns::new(200.0)),
                ..RandomNetSpec::default()
            }
            .build()
        };
        let base = Solver::new(&mk(0.0), &lib).solve();
        let shifted = Solver::new(&mk(delta_ps), &lib).solve();
        let got = shifted.slack.picos() - base.slack.picos();
        prop_assert!((got - delta_ps).abs() < 1e-6,
            "slack shift {got} != RAT shift {delta_ps}");
        // Identical placements: the optimum's argmax is invariant under a
        // uniform RAT shift (ties could flip, so compare achieved slack).
        prop_assert_eq!(base.placements.len(), shifted.placements.len());
    }

    /// Predecessor tracking changes neither the slack nor any counter
    /// except arena bookkeeping.
    #[test]
    fn tracking_is_observationally_pure(tree in arb_net(), lib in arb_library()) {
        let on = Solver::new(&tree, &lib).solve();
        let off = Solver::new(&tree, &lib).track_predecessors(false).solve();
        prop_assert_eq!(on.slack, off.slack);
        prop_assert_eq!(on.stats.betas_generated, off.stats.betas_generated);
        prop_assert_eq!(on.stats.max_list_len, off.stats.max_list_len);
        prop_assert_eq!(off.stats.arena_entries, 0);
    }

    /// The cost frontier's most expensive point equals the unconstrained
    /// optimum whenever the budget doesn't bind.
    #[test]
    fn frontier_reaches_unconstrained_optimum(
        sinks in 1usize..10,
        seed in 0u64..200,
    ) {
        let lib = BufferLibrary::paper_synthetic(4).expect("b > 0");
        let tree = RandomNetSpec {
            sinks,
            seed,
            site_pitch: Some(Microns::new(400.0)),
            ..RandomNetSpec::default()
        }
        .build();
        // Generous budget: max cost (39) x sites.
        let budget = 40 * tree.buffer_site_count() as u32;
        let frontier = CostSolver::new(&tree, &lib)
            .max_cost(budget.min(400))
            .solve()
            .expect("integer costs");
        let unconstrained = Solver::new(&tree, &lib).solve();
        let best = frontier.points.last().expect("never empty");
        if budget <= 400 {
            prop_assert!((best.slack.picos() - unconstrained.slack.picos()).abs() < 1e-6);
        } else {
            prop_assert!(best.slack.picos() <= unconstrained.slack.picos() + 1e-6);
        }
    }

    /// Net-format round trip preserves the solve result exactly.
    #[test]
    fn io_roundtrip_preserves_optimum(tree in arb_net(), lib in arb_library()) {
        let text = fastbuf::rctree::io::write(&tree);
        let back = fastbuf::rctree::io::parse(&text).expect("own output parses");
        let a = Solver::new(&tree, &lib).solve();
        let b = Solver::new(&back, &lib).solve();
        // The format stores fF/ps, so parasitics may move by one ULP in the
        // F/s <-> fF/ps conversion; allow a matching relative tolerance.
        let tol = 1e-9 * a.slack.picos().abs().max(1e-3);
        prop_assert!((a.slack.picos() - b.slack.picos()).abs() <= tol,
            "{} vs {}", a.slack, b.slack);
        prop_assert_eq!(a.placements.len(), b.placements.len());
    }
}
