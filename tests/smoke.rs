//! Workspace smoke test: the `fastbuf::prelude` quick-start path from the
//! crate docs must work end-to-end — technology, library, tree building,
//! solving, and independent verification — using only prelude imports.

use fastbuf::prelude::*;

#[test]
fn prelude_quick_start_path_succeeds() -> Result<(), Box<dyn std::error::Error>> {
    // Technology -> library -> net, exactly as the README/crate docs show.
    let tech = Technology::tsmc180_like();
    let lib = BufferLibrary::paper_synthetic(16)?;
    assert_eq!(lib.len(), 16);

    // A 12 mm two-pin net with 11 candidate buffer positions (built
    // through the prelude's TreeBuilder to exercise the public surface).
    let mut b = TreeBuilder::new();
    let src = b.source(Driver::new(Ohms::new(180.0)));
    let mut prev = src;
    for _ in 0..11 {
        let site = b.buffer_site();
        b.connect(prev, site, Wire::from_length(&tech, Microns::new(1_000.0)))?;
        prev = site;
    }
    let sink = b.sink(Farads::from_femto(12.0), Seconds::from_pico(900.0));
    b.connect(prev, sink, Wire::from_length(&tech, Microns::new(1_000.0)))?;
    let tree = b.build()?;

    // Solve and cross-check with the independent forward Elmore evaluator.
    let solution = Solver::new(&tree, &lib).solve();
    assert!(
        !solution.placements.is_empty(),
        "a 12 mm line wants buffers"
    );
    solution.verify(&tree, &lib)?;

    // The facade's one-liner net constructor gives the same kind of net.
    let quick = fastbuf::netgen::line_net(Microns::new(12_000.0), 11);
    let quick_solution = Solver::new(&quick, &lib).solve();
    assert!(!quick_solution.placements.is_empty());
    quick_solution.verify(&quick, &lib)?;

    // All three algorithm variants run on the prelude path.
    for algo in Algorithm::ALL {
        let s = Solver::new(&tree, &lib).algorithm(algo).solve();
        s.verify(&tree, &lib)?;
    }
    Ok(())
}
