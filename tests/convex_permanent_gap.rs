//! The correctness subtlety of the paper's published pruning
//! (DESIGN.md §2.1), demonstrated both at the data-structure level and on a
//! concrete net.
//!
//! Convex pruning keeps only the upper hull of the `(C, Q)` candidate set.
//! That is sufficient for generating buffered candidates (Lemma 3) and
//! loss-free on 2-pin nets, but a **branch merge** takes `Q = min(Q_l,
//! Q_r)`, which can flatten the hull above an interior point and make that
//! pruned point the unique optimum. The paper's C code nevertheless frees
//! pruned candidates from the propagated list; `Algorithm::LiShiPermanent`
//! reproduces that, and these tests pin down the consequences.

use fastbuf::netgen::RandomNetSpec;
use fastbuf::prelude::*;
use fastbuf::{
    convex_prune_in_place, merge_branches, Candidate, CandidateList, PredArena, PredRef,
};

fn list(points: &[(f64, f64)]) -> CandidateList {
    CandidateList::from_candidates(
        points
            .iter()
            .map(|&(q, c)| Candidate::new(q, c, PredRef::NONE))
            .collect(),
    )
}

/// The mechanism: an interior point pruned before a merge would have been
/// the strict optimum after it.
#[test]
fn interior_candidate_becomes_optimal_after_merge() {
    // Branch L: (Q, C) = (0,0), (4.9,1), (10,2). The middle point is below
    // the chord (slope 4.9 then 5.1... actually 4.9 < 5.0) -> pruned.
    let left = list(&[(0.0, 0.0), (4.9, 1.0), (10.0, 2.0)]);
    let mut left_pruned = left.clone();
    let removed = convex_prune_in_place(&mut left_pruned);
    assert_eq!(removed, 1, "the interior candidate is convex-pruned");

    // Branch R has a single candidate with Q = 5: the merge caps the
    // high-Q candidate of L at 5, flattening the hull.
    let right = list(&[(5.0, 0.0)]);

    let mut arena = PredArena::new();
    let merged_full = merge_branches(left, right.clone(), &mut arena, false);
    let merged_pruned = merge_branches(left_pruned, right, &mut arena, false);

    // Upstream buffer with R = 2 (and K = 0): maximize Q - 2C.
    let best_full = merged_full.best_driven(2.0, 0.0).unwrap();
    let best_pruned = merged_pruned.best_driven(2.0, 0.0).unwrap();
    let q_full = best_full.q - 2.0 * best_full.c;
    let q_pruned = best_pruned.q - 2.0 * best_pruned.c;

    assert!(
        (q_full - 2.9).abs() < 1e-12,
        "optimum uses the interior point"
    );
    assert!((q_pruned - 1.0).abs() < 1e-12, "pruned list lost it");
    assert!(q_full > q_pruned + 1.0);
}

/// A concrete multi-pin net where the published algorithm returns strictly
/// less slack than the exact solvers (found by the `ablation_pruning`
/// harness; pinned here as a regression anchor).
#[test]
fn permanent_pruning_loses_slack_on_a_real_net() {
    let lib = BufferLibrary::paper_synthetic(32).unwrap();
    let tree = RandomNetSpec {
        sinks: 30,
        seed: 7,
        ..RandomNetSpec::paper(30)
    }
    .build();

    let exact = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
    let lillis = Solver::new(&tree, &lib)
        .algorithm(Algorithm::Lillis)
        .solve();
    let perm = Solver::new(&tree, &lib)
        .algorithm(Algorithm::LiShiPermanent)
        .solve();

    // Exact algorithms agree...
    assert!((exact.slack.picos() - lillis.slack.picos()).abs() < 1e-6);
    // ...and the published pruning is strictly below them on this net.
    let gap = exact.slack.picos() - perm.slack.picos();
    assert!(
        gap > 0.5,
        "expected a strict slack gap on this net, got {gap} ps"
    );
    // It still returns a *valid* (achievable) solution.
    perm.verify(&tree, &lib).unwrap();
}

/// On 2-pin nets every operation preserves "interior stays interior", so
/// the published pruning is loss-free — sweep a family to confirm.
#[test]
fn no_gap_on_two_pin_families() {
    let lib = BufferLibrary::paper_synthetic_jittered(24, 9).unwrap();
    for sites in 1..=40usize {
        let tree = fastbuf::netgen::line_net(Microns::new(250.0 * (sites + 1) as f64), sites);
        let exact = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
        let perm = Solver::new(&tree, &lib)
            .algorithm(Algorithm::LiShiPermanent)
            .solve();
        assert!(
            (exact.slack.picos() - perm.slack.picos()).abs() < 1e-6,
            "sites={sites}: unexpected 2-pin gap"
        );
    }
}

/// Quantify the gap across many random nets: it must be one-sided (never a
/// gain) and is usually small but nonzero somewhere.
#[test]
fn gap_is_one_sided_across_seeds() {
    let lib = BufferLibrary::paper_synthetic(16).unwrap();
    let mut gaps = Vec::new();
    for seed in 0..10u64 {
        let tree = RandomNetSpec {
            sinks: 25,
            seed,
            site_pitch: Some(Microns::new(150.0)),
            ..RandomNetSpec::default()
        }
        .build();
        let exact = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
        let perm = Solver::new(&tree, &lib)
            .algorithm(Algorithm::LiShiPermanent)
            .solve();
        let gap = exact.slack.picos() - perm.slack.picos();
        assert!(
            gap > -1e-6,
            "seed {seed}: permanent must never win ({gap} ps)"
        );
        gaps.push(gap);
    }
    // The phenomenon is real: at least one seed in this family shows it.
    assert!(
        gaps.iter().any(|&g| g > 1e-3),
        "expected at least one strict gap across seeds, got {gaps:?}"
    );
}
