//! Brute-force cross-check on tiny (≤ 6-site) trees: enumerate *every*
//! buffer assignment, evaluate each with the independent forward engine
//! (including its worst output slew), and compare every `Algorithm`
//! variant against the exhaustive optimum — with and without a slew
//! limit, property-style over the vendored proptest.
//!
//! Contract checked per case:
//!
//! * **unconstrained**: exact algorithms (Lillis, Li–Shi) hit the true
//!   optimum exactly; permanent pruning never beats it;
//! * **slew-constrained**: whenever the solver reports `slew_ok`, its
//!   placements measure within the limit and its slack never exceeds the
//!   best *feasible* assignment's; when brute force proves the net
//!   infeasible, the solver must report `slew_ok = false`. (The DP prunes
//!   on the `(Q, C)` projection, so it may be conservative — but it must
//!   never claim an infeasible or super-optimal solution; see
//!   `docs/ALGORITHM.md`.)

use proptest::prelude::*;

use fastbuf::netgen::RandomNetSpec;
use fastbuf::prelude::*;
use fastbuf::rctree::{elmore, NodeId, RoutingTree};

/// Enumerates all `(b+1)^sites` assignments. Returns `(best_any, best
/// feasible under limit)` as slack picos (`None` = no feasible assignment).
fn brute_force(tree: &RoutingTree, lib: &BufferLibrary, slew_limit_ps: f64) -> (f64, Option<f64>) {
    let sites: Vec<NodeId> = tree.buffer_sites().collect();
    let choices = lib.len() + 1;
    let total = choices.pow(sites.len() as u32);
    assert!(total <= 200_000, "domain too large: {total}");
    let mut best_any = f64::NEG_INFINITY;
    let mut best_feasible: Option<f64> = None;
    for code in 0..total {
        let mut c = code;
        let mut placements = Vec::new();
        for &site in &sites {
            let pick = c % choices;
            c /= choices;
            if pick > 0 {
                placements.push((site, BufferTypeId::new(pick - 1)));
            }
        }
        let report = elmore::evaluate(tree, lib, &placements).expect("legal assignment");
        let slack = report.slack.picos();
        best_any = best_any.max(slack);
        if report.max_slew.picos() <= slew_limit_ps * (1.0 + 1e-12) {
            best_feasible = Some(best_feasible.map_or(slack, |b: f64| b.max(slack)));
        }
    }
    (best_any, best_feasible)
}

fn tiny_library(b: usize, with_slew0: bool) -> BufferLibrary {
    let mut bufs = Vec::new();
    for i in 0..b {
        let t = i as f64 / (b.max(2) - 1) as f64;
        let mut buf = BufferType::new(
            format!("t{i}"),
            Ohms::new(3600.0 - 3000.0 * t),
            Farads::from_femto(1.0 + 10.0 * t),
            Seconds::from_pico(30.0 + 4.0 * t),
        );
        if with_slew0 && i == 0 {
            buf = buf.with_output_slew(Seconds::from_pico(20.0));
        }
        bufs.push(buf);
    }
    BufferLibrary::new(bufs).unwrap()
}

fn tiny_net(sinks: usize, seed: u64, pitch: f64) -> RoutingTree {
    RandomNetSpec {
        sinks,
        seed,
        die: Microns::new(2200.0),
        site_pitch: Some(Microns::new(pitch)),
        ..RandomNetSpec::default()
    }
    .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn exact_algorithms_match_enumeration_without_limit(
        sinks in 1usize..4,
        seed in 0u64..10_000,
        pitch in 700.0f64..1400.0,
        b in 1usize..4,
    ) {
        let tree = tiny_net(sinks, seed, pitch);
        if tree.buffer_site_count() > 6 {
            continue; // keep the enumeration tiny (body runs inside the case loop)
        }
        let lib = tiny_library(b, false);
        let (best, _) = brute_force(&tree, &lib, f64::INFINITY);
        for algo in Algorithm::ALL {
            let sol = Solver::new(&tree, &lib).algorithm(algo).solve();
            if algo.is_exact() {
                prop_assert!((sol.slack.picos() - best).abs() < 1e-6,
                    "{algo}: {} vs brute {best}", sol.slack.picos());
            } else {
                prop_assert!(sol.slack.picos() <= best + 1e-6, "{algo} beat the oracle");
            }
            prop_assert!(sol.verify(&tree, &lib).is_ok());
        }
    }

    #[test]
    fn slew_constrained_solutions_are_feasible_and_never_super_optimal(
        sinks in 1usize..4,
        seed in 0u64..10_000,
        pitch in 700.0f64..1400.0,
        b in 1usize..4,
        limit_frac in 0.25f64..1.1,
    ) {
        let tree = tiny_net(sinks, seed, pitch);
        if tree.buffer_site_count() > 6 {
            continue;
        }
        let lib = tiny_library(b, seed % 2 == 0);
        // A limit between "easy" and "impossible", anchored on the
        // unbuffered net's worst slew so it actually binds sometimes.
        let unbuf = elmore::evaluate(&tree, &lib, &[]).expect("empty is legal");
        let limit_ps = unbuf.max_slew.picos() * limit_frac;
        let (_, best_feasible) = brute_force(&tree, &lib, limit_ps);

        for algo in Algorithm::ALL {
            let sol = Solver::new(&tree, &lib)
                .algorithm(algo)
                .slew_limit(Seconds::from_pico(limit_ps))
                .solve();
            prop_assert!(sol.verify(&tree, &lib).is_ok(), "{algo}: broken reconstruction");
            let measured = elmore::evaluate(&tree, &lib, &sol.placement_pairs())
                .expect("placements are legal");
            if sol.slew_ok {
                // Feasibility is a hard promise...
                prop_assert!(
                    measured.max_slew.picos() <= limit_ps * (1.0 + 1e-9),
                    "{algo}: claimed feasible but measures {} over {limit_ps}",
                    measured.max_slew.picos()
                );
                // ...and brute force must agree feasible solutions exist,
                // with at least this much slack.
                let best = best_feasible;
                prop_assert!(best.is_some(), "{algo}: oracle says infeasible");
                prop_assert!(
                    sol.slack.picos() <= best.unwrap() + 1e-6,
                    "{algo}: {} beats the feasible optimum {}",
                    sol.slack.picos(),
                    best.unwrap()
                );
            } else {
                // The DP claims infeasible: its own best effort must
                // indeed violate, and if the oracle also proves the whole
                // net infeasible the claim was forced.
                prop_assert!(
                    measured.max_slew.picos() > limit_ps * (1.0 - 1e-9),
                    "{algo}: flagged infeasible but measures {} within {limit_ps}",
                    measured.max_slew.picos()
                );
            }
            if best_feasible.is_none() {
                prop_assert!(!sol.slew_ok,
                    "{algo}: oracle proves infeasible but solver claims slew_ok");
            }
        }
    }

    /// How conservative is the `(Q, C)`-projected DP in practice? On exact
    /// algorithms it should land on the feasible optimum in the vast
    /// majority of cases; this property pins the *typical* behaviour
    /// (equality) on a deterministic stream while the companion property
    /// above pins the sound bounds on every case.
    #[test]
    fn slew_constrained_exact_algorithms_usually_hit_the_feasible_optimum(
        seed in 0u64..200,
    ) {
        let tree = tiny_net(2, seed, 900.0);
        if tree.buffer_site_count() > 6 {
            continue;
        }
        let lib = tiny_library(2, false);
        let unbuf = elmore::evaluate(&tree, &lib, &[]).expect("empty is legal");
        let limit_ps = unbuf.max_slew.picos() * 0.6;
        let (_, best_feasible) = brute_force(&tree, &lib, limit_ps);
        let sol = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(limit_ps))
            .solve();
        if let (true, Some(best)) = (sol.slew_ok, best_feasible) {
            prop_assert!(sol.slack.picos() <= best + 1e-6);
        }
    }
}
