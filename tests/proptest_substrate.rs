//! Property-based tests of the substrate layers (units, buffer sets,
//! segmenting, Elmore evaluation) — the pieces every solver stands on.

use proptest::prelude::*;

use fastbuf::buflib::units::{Farads, Microns, Ohms, Seconds};
use fastbuf::buflib::{BufferSet, BufferTypeId};
use fastbuf::netgen::RandomNetSpec;
use fastbuf::prelude::*;
use fastbuf::rctree::segment::segment_uniform;
use fastbuf::rctree::{elmore, Wire};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RC products commute and scale linearly.
    #[test]
    fn unit_algebra(r in 0.0f64..1e5, c in 0.0f64..1e-9, k in 1.0f64..100.0) {
        let rc1 = Ohms::new(r) * Farads::new(c);
        let rc2 = Farads::new(c) * Ohms::new(r);
        prop_assert_eq!(rc1, rc2);
        let scaled = Ohms::new(r * k) * Farads::new(c);
        prop_assert!((scaled.value() - rc1.value() * k).abs() <= 1e-12 * scaled.value().abs().max(1e-30));
        // Sub then add is identity.
        let t = Seconds::new(rc1.value());
        prop_assert_eq!(t + Seconds::ZERO, t);
        prop_assert_eq!(t - Seconds::ZERO, t);
    }

    /// Engineering display round-trips through the magnitude (no panics,
    /// correct sign).
    #[test]
    fn unit_display_never_panics(v in -1e12f64..1e12) {
        let s = format!("{}", Seconds::new(v));
        prop_assert!(!s.is_empty());
        if v < 0.0 {
            prop_assert!(s.starts_with('-'));
        }
    }

    /// BufferSet behaves like a set of indices.
    #[test]
    fn bufferset_laws(mut ids in prop::collection::vec(0usize..200, 0..40)) {
        let universe = 200;
        let mut set = BufferSet::empty(universe);
        for &i in &ids {
            set.insert(BufferTypeId::new(i));
        }
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(set.len(), ids.len());
        let got: Vec<usize> = set.iter().map(|id| id.index()).collect();
        prop_assert_eq!(&got, &ids);
        for &i in &ids {
            prop_assert!(set.contains(BufferTypeId::new(i)));
            set.remove(BufferTypeId::new(i));
            prop_assert!(!set.contains(BufferTypeId::new(i)));
        }
        prop_assert!(set.is_empty());
    }

    /// Splitting a wire into k parts preserves total parasitics.
    #[test]
    fn wire_split_conserves_parasitics(
        r in 0.01f64..1e4,
        c in 1e-18f64..1e-10,
        pieces in 1usize..40,
    ) {
        let w = Wire::new(Ohms::new(r), Farads::new(c));
        let part = w.split(pieces);
        let total_r = part.resistance().value() * pieces as f64;
        let total_c = part.capacitance().value() * pieces as f64;
        prop_assert!((total_r - r).abs() <= 1e-9 * r);
        prop_assert!((total_c - c).abs() <= 1e-9 * c);
    }

    /// In the half-capacitance lumped Elmore model, path delay is *exactly*
    /// invariant under wire splitting: a segment contributes
    /// `R_e·(C_e/2 + downstream)`, and splitting conserves both the total
    /// R·C/2 self-term along a path and every through-term. Segmenting
    /// therefore changes which *buffered* solutions exist, but never the
    /// unbuffered slack.
    #[test]
    fn segmenting_preserves_unbuffered_elmore_exactly(
        sinks in 1usize..20,
        seed in 0u64..300,
    ) {
        let base = RandomNetSpec {
            sinks,
            seed,
            site_pitch: None,
            ..RandomNetSpec::default()
        }
        .build();
        let lib = fastbuf::buflib::BufferLibrary::empty();
        let reference = elmore::evaluate(&base, &lib, &[]).unwrap().slack.picos();
        for pieces in [2usize, 4, 8] {
            let t = segment_uniform(&base, pieces).unwrap().tree;
            let slack = elmore::evaluate(&t, &lib, &[]).unwrap().slack.picos();
            prop_assert!(
                (slack - reference).abs() <= 1e-6 * reference.abs().max(1.0),
                "pieces={pieces}: slack {slack} != {reference}"
            );
        }
    }

    /// The forward evaluator is a pure function: same inputs, same report.
    #[test]
    fn evaluation_is_deterministic(sinks in 1usize..15, seed in 0u64..200) {
        let tree = RandomNetSpec {
            sinks,
            seed,
            site_pitch: Some(Microns::new(300.0)),
            ..RandomNetSpec::default()
        }
        .build();
        let lib = BufferLibrary::paper_synthetic(4).unwrap();
        let sol = Solver::new(&tree, &lib).solve();
        let a = elmore::evaluate(&tree, &lib, &sol.placement_pairs()).unwrap();
        let b = elmore::evaluate(&tree, &lib, &sol.placement_pairs()).unwrap();
        prop_assert_eq!(a.slack, b.slack);
        prop_assert_eq!(a.root_load, b.root_load);
        prop_assert_eq!(a.critical_sink, b.critical_sink);
    }

    /// Net statistics are consistent with each other.
    #[test]
    fn tree_stats_self_consistent(sinks in 1usize..25, seed in 0u64..200) {
        let tree = RandomNetSpec {
            sinks,
            seed,
            ..RandomNetSpec::default()
        }
        .build();
        let stats = tree.stats();
        prop_assert_eq!(stats.nodes, stats.sinks + stats.internals + 1); // +1 source
        prop_assert_eq!(stats.edges, stats.nodes - 1);
        prop_assert!(stats.buffer_sites <= stats.internals);
        prop_assert!(stats.max_depth < stats.nodes);
        prop_assert_eq!(stats.sinks, tree.sinks().count());
        prop_assert_eq!(stats.buffer_sites, tree.buffer_sites().count());
    }
}
