//! API-surface guard: every name exported from `fastbuf::prelude` and
//! `fastbuf::api` must keep compiling and keep its basic shape.
//!
//! This test exists to fail loudly when a re-export is dropped, renamed,
//! or has its signature changed — the facade and prelude are the
//! documented contract of the workspace. It exercises each export just
//! enough to pin its type, not its behaviour (behaviour is covered by
//! `api_equivalence.rs` and the per-crate suites).

// Pin every prelude export by importing it explicitly (a glob would
// silently forgive removals).
#[allow(unused_imports)]
use fastbuf::prelude::{
    Algorithm, BatchOptions, BatchReport, BatchSolver, BufferLibrary, BufferSet, BufferType,
    BufferTypeId, CostSolver, DelayModel, Driver, ElmoreModel, Farads, Microns, NodeId, NodeKind,
    Objective, Ohms, Outcome, Polarity, PolaritySolver, RoutingTree, ScaledElmoreModel, Scenario,
    ScenarioOutcome, ScenarioResult, Seconds, Session, SiteConstraint, Solution, SolveError,
    SolveRequest, SolveWorkspace, Solver, TreeBuilder, Wire,
};

// And the `fastbuf::api` module surface.
#[allow(unused_imports)]
use fastbuf::api::{
    json::{json_f64, json_str, NetRecord},
    parse_scenarios, SessionBuilder,
};

/// The full request round-trip compiles and runs against the prelude
/// names alone.
#[test]
fn prelude_supports_the_request_workflow() {
    let lib = BufferLibrary::paper_synthetic(4).unwrap();
    let tree: RoutingTree = fastbuf::netgen::line_net(Microns::new(6_000.0), 5);

    let session: Session = Session::builder(lib)
        .delay_model(std::sync::Arc::new(ElmoreModel))
        .build();
    let request: SolveRequest = session
        .request(&tree)
        .objective(Objective::MaxSlack)
        .scenario(Scenario::named("only").algorithm(Algorithm::LiShi));
    let outcome: Outcome = request.solve().unwrap();
    let corner: &ScenarioOutcome = &outcome.scenarios[0];
    match &corner.result {
        ScenarioResult::Solution(s) => {
            let _: &Solution = s;
        }
        _ => panic!("max-slack outcomes carry solutions"),
    }
    let err: Option<SolveError> = session.request(&tree).scenarios(Vec::new()).solve().err();
    assert!(err.is_some());
    outcome.verify(&tree, session.library()).unwrap();
}

/// The legacy prelude names still compose (shim path).
#[test]
fn prelude_supports_the_legacy_workflow() {
    let lib = BufferLibrary::paper_synthetic(4).unwrap();
    let tree = fastbuf::netgen::line_net(Microns::new(6_000.0), 5);
    let mut ws = SolveWorkspace::new();
    let solution = Solver::new(&tree, &lib)
        .algorithm(Algorithm::Lillis)
        .solve_with(&mut ws);
    solution.verify(&tree, &lib).unwrap();
    let report: BatchReport = BatchSolver::new(std::slice::from_ref(&tree), &lib)
        .with_options(BatchOptions::default())
        .solve();
    assert_eq!(report.outcomes.len(), 1);
}

/// `fastbuf::api` module exports: scenario-file parsing and the shared
/// JSON schema helpers.
#[test]
fn api_module_surface_holds() {
    let scenarios = parse_scenarios("a\nb derate=0.9\n").unwrap();
    assert_eq!(scenarios.len(), 2);
    assert_eq!(json_f64(1.0), "1");
    assert_eq!(json_str("x"), "\"x\"");
    let record = NetRecord {
        name: "n",
        index: 0,
        scenario: None,
        sinks: 1,
        sites: 1,
        slack_before: Seconds::ZERO,
        slack_after: Seconds::ZERO,
        slew_before: Seconds::ZERO,
        max_slew: Seconds::ZERO,
        slew_ok: true,
        buffers: 0,
        cost: 0.0,
        elapsed: std::time::Duration::ZERO,
        placements: None,
    };
    assert!(record.to_json().contains("\"slack_after_ps\""));
    let _builder: SessionBuilder = Session::builder(BufferLibrary::empty());
}
