//! Degenerate-net audit (panic-freedom satellite): solving trees with zero
//! buffer sites, a single sink directly on the source, zero-length wires,
//! or empty/over-constrained libraries must return a valid `Solution` —
//! never panic — on every algorithm, with and without a slew limit, and
//! through every solver entry point (plain, workspace-reuse, cost
//! frontier, batch).

use fastbuf::netgen;
use fastbuf::prelude::*;
use fastbuf::rctree::{elmore, RoutingTree};
use std::sync::Arc;

fn sink_on_source(wire: Wire) -> RoutingTree {
    let mut b = TreeBuilder::new();
    let src = b.source(Driver::new(Ohms::new(180.0)));
    let snk = b.sink(Farads::from_femto(10.0), Seconds::from_pico(500.0));
    b.connect(src, snk, wire).unwrap();
    b.build().unwrap()
}

fn degenerate_nets() -> Vec<(&'static str, RoutingTree)> {
    let tech = Technology::tsmc180_like();
    let mut nets: Vec<(&'static str, RoutingTree)> = Vec::new();

    // Single sink directly on the source through a zero wire.
    nets.push(("sink-on-source/zero-wire", sink_on_source(Wire::zero())));
    // ... and through a real wire, still with zero buffer sites.
    nets.push((
        "sink-on-source/long-wire",
        sink_on_source(Wire::from_length(&tech, Microns::new(5000.0))),
    ));

    // Zero-capacitance sink with zero RAT.
    {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default());
        let snk = b.sink(Farads::ZERO, Seconds::ZERO);
        b.connect(src, snk, Wire::zero()).unwrap();
        nets.push(("zero-sink/ideal-driver", b.build().unwrap()));
    }

    // A site chain where every wire is zero-length.
    {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(100.0)));
        let mut prev = src;
        for _ in 0..4 {
            let s = b.buffer_site();
            b.connect(prev, s, Wire::zero()).unwrap();
            prev = s;
        }
        let snk = b.sink(Farads::from_femto(5.0), Seconds::from_pico(100.0));
        b.connect(prev, snk, Wire::zero()).unwrap();
        nets.push(("zero-length-chain", b.build().unwrap()));
    }

    // Branching with zero wires and mixed zero/real branches.
    {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(250.0)));
        let tee = b.internal();
        let site = b.buffer_site();
        let k1 = b.sink(Farads::ZERO, Seconds::from_pico(50.0));
        let k2 = b.sink(Farads::from_femto(30.0), Seconds::from_pico(900.0));
        b.connect(src, tee, Wire::zero()).unwrap();
        b.connect(tee, k1, Wire::zero()).unwrap();
        b.connect(tee, site, Wire::from_length(&tech, Microns::new(3000.0)))
            .unwrap();
        b.connect(site, k2, Wire::zero()).unwrap();
        nets.push(("zero-wire-tee", b.build().unwrap()));
    }

    // A site whose subset constraint is empty (behaves like not-a-site).
    {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(100.0)));
        let mid = b.internal_with(SiteConstraint::Subset(Arc::new(
            fastbuf::buflib::BufferSet::empty(4),
        )));
        let snk = b.sink(Farads::from_femto(8.0), Seconds::from_pico(400.0));
        b.connect(src, mid, Wire::from_length(&tech, Microns::new(1000.0)))
            .unwrap();
        b.connect(mid, snk, Wire::from_length(&tech, Microns::new(1000.0)))
            .unwrap();
        nets.push(("empty-subset-site", b.build().unwrap()));
    }

    // Zero-site line from the generator.
    nets.push(("line/no-sites", netgen::line_net(Microns::new(4000.0), 0)));

    nets
}

fn libraries() -> Vec<(&'static str, BufferLibrary)> {
    vec![
        ("empty", BufferLibrary::empty()),
        ("paper/4", BufferLibrary::paper_synthetic(4).unwrap()),
        (
            "all-over-limited",
            // Every type's max_load is tiny: no candidate ever fits.
            BufferLibrary::new(vec![BufferType::new(
                "choked",
                Ohms::new(100.0),
                Farads::from_femto(1.0),
                Seconds::from_pico(10.0),
            )
            .with_max_load(Farads::new(1e-21))])
            .unwrap(),
        ),
    ]
}

#[test]
fn every_degenerate_net_solves_without_panicking() {
    for (net_name, tree) in degenerate_nets() {
        for (lib_name, lib) in libraries() {
            for algo in Algorithm::ALL {
                for slew_limit in [None, Some(Seconds::from_pico(50.0))] {
                    let mut solver = Solver::new(&tree, &lib).algorithm(algo);
                    if let Some(limit) = slew_limit {
                        solver = solver.slew_limit(limit);
                    }
                    let sol = solver.solve();
                    assert!(
                        !sol.slack.value().is_nan(),
                        "{net_name}/{lib_name}/{algo}: NaN slack"
                    );
                    // The reconstruction must be legal and reproduce the
                    // predicted slack on the forward evaluator.
                    sol.verify(&tree, &lib)
                        .unwrap_or_else(|e| panic!("{net_name}/{lib_name}/{algo}: {e}"));
                }
            }
        }
    }
}

#[test]
fn workspace_reuse_handles_degenerate_nets() {
    let lib = BufferLibrary::paper_synthetic(4).unwrap();
    let mut ws = SolveWorkspace::new();
    // Interleave degenerate and normal nets through one workspace.
    for (name, tree) in degenerate_nets() {
        let reused = Solver::new(&tree, &lib).solve_with(&mut ws);
        let fresh = Solver::new(&tree, &lib).solve();
        assert_eq!(reused.slack, fresh.slack, "{name}");
        assert_eq!(reused.placements, fresh.placements, "{name}");
        let normal = netgen::line_net(Microns::new(8000.0), 7);
        let _ = Solver::new(&normal, &lib).solve_with(&mut ws);
    }
}

#[test]
fn untracked_degenerate_solves_are_panic_free() {
    let lib = BufferLibrary::paper_synthetic(2).unwrap();
    for (name, tree) in degenerate_nets() {
        let sol = Solver::new(&tree, &lib).track_predecessors(false).solve();
        assert!(sol.placements.is_empty(), "{name}");
        assert!(!sol.slack.value().is_nan(), "{name}");
    }
}

#[test]
fn cost_frontier_handles_degenerate_nets() {
    let lib = BufferLibrary::paper_synthetic(2).unwrap();
    for (name, tree) in degenerate_nets() {
        let frontier = CostSolver::new(&tree, &lib)
            .max_cost(20)
            .solve()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!frontier.points.is_empty(), "{name}: empty frontier");
        assert_eq!(frontier.points[0].cost, 0, "{name}");
    }
}

#[test]
fn batch_handles_degenerate_fleets() {
    let lib = BufferLibrary::paper_synthetic(4).unwrap();
    let nets: Vec<RoutingTree> = degenerate_nets().into_iter().map(|(_, t)| t).collect();
    let report = fastbuf::batch::BatchSolver::new(&nets, &lib)
        .workers(2)
        .slew_limit(Seconds::from_pico(100.0))
        .solve();
    assert_eq!(report.outcomes.len(), nets.len());
    for o in &report.outcomes {
        assert!(!o.slack.value().is_nan(), "net {}", o.index);
    }
}

/// Satellite regression: a `BlockSite` edit that removes the *last* legal
/// site leaves a zero-site tree whose only completion is unbuffered. The
/// incremental solve, `Solution::verify`/`verify_with`, and the api-level
/// `Outcome::verify` must all report the infeasibility honestly
/// (`slew_ok = false` under a binding limit) and never panic — through the
/// incremental path (cache populated with the site present, then
/// invalidated by the block) as well as from scratch.
#[test]
fn blocking_the_last_site_is_verifiable_never_panics() {
    use fastbuf::incremental::{Edit, IncrementalSolver};
    let tech = Technology::tsmc180_like();
    let lib = BufferLibrary::paper_synthetic(4).unwrap();

    // One site in the middle of a 10 mm line: buffered it meets a 300 ps
    // limit, unbuffered it cannot.
    let mut b = TreeBuilder::new();
    let src = b.source(Driver::new(Ohms::new(180.0)));
    let site = b.buffer_site();
    let snk = b.sink(Farads::from_femto(20.0), Seconds::from_pico(2000.0));
    b.connect(src, site, Wire::from_length(&tech, Microns::new(5000.0)))
        .unwrap();
    b.connect(site, snk, Wire::from_length(&tech, Microns::new(5000.0)))
        .unwrap();
    let tree = b.build().unwrap();
    // A limit strictly between the buffered optimum's worst slew and the
    // unbuffered worst slew: feasible exactly as long as the site exists.
    let buffered = Solver::new(&tree, &lib).solve();
    assert!(!buffered.placements.is_empty());
    let s_buf = elmore::evaluate(&tree, &lib, &buffered.placement_pairs())
        .unwrap()
        .max_slew;
    let s_unbuf = elmore::evaluate(&tree, &lib, &[]).unwrap().max_slew;
    assert!(s_buf < s_unbuf);
    let limit = Seconds::new(0.5 * (s_buf.value() + s_unbuf.value()));

    let mut options = SolverOptions::default();
    options.slew_limit = Some(limit);
    let mut solver = IncrementalSolver::new(tree.clone(), lib.clone()).with_options(options);
    let before = solver.solve();
    assert!(before.slew_ok, "one mid-line buffer meets {limit}");
    assert!(!before.placements.is_empty());

    // The blockage lands on the only site.
    solver.apply(&Edit::BlockSite { node: site }).unwrap();
    assert_eq!(solver.tree().buffer_site_count(), 0);
    for sol in [solver.solve(), solver.solve_scratch()] {
        assert!(sol.placements.is_empty(), "no site, no buffers");
        assert!(!sol.slew_ok, "unbuffered 10 mm line cannot meet 300 ps");
        assert!(!sol.slack.value().is_nan());
        // Verification measures the best-effort unbuffered solution —
        // must succeed (slack matches), never panic.
        sol.verify(solver.tree(), &lib).unwrap();
        sol.verify_with(solver.tree(), &lib, &ElmoreModel).unwrap();
    }

    // Same story through the api ECO entry and Outcome::verify, with a
    // derated corner riding along.
    let session = Session::new(lib.clone());
    let mut eco = session
        .eco(
            &tree,
            vec![
                Scenario::named("signoff").slew_limit(limit),
                Scenario::named("slow").slew_limit(limit).rat_derate(0.9),
            ],
        )
        .unwrap();
    let before = eco.solve().unwrap();
    assert!(before
        .scenarios
        .iter()
        .all(|s| s.solution().unwrap().slew_ok));
    eco.apply(&Edit::BlockSite { node: site }).unwrap();
    let after = eco.solve().unwrap();
    for corner in &after.scenarios {
        let sol = corner.solution().unwrap();
        assert!(!sol.slew_ok, "{}", corner.scenario.name);
        assert!(sol.placements.is_empty(), "{}", corner.scenario.name);
    }
    // Model-and-derate-aware verification of the infeasible outcome against
    // the *edited* tree: must be Ok (the best-effort slack is achievable),
    // never a panic.
    after.verify(eco.tree(), session.library()).unwrap();

    // Unblocking restores feasibility through the same cache.
    eco.apply(&Edit::UnblockSite { node: site }).unwrap();
    let restored = eco.solve().unwrap();
    assert!(restored
        .scenarios
        .iter()
        .all(|s| s.solution().unwrap().slew_ok));
    restored.verify(eco.tree(), session.library()).unwrap();
}

#[test]
fn unbuffered_degenerate_slack_matches_oracle() {
    // The DP on a siteless net must equal the plain forward evaluation.
    for (name, tree) in degenerate_nets() {
        if tree.buffer_site_count() != 0 {
            continue;
        }
        let lib = BufferLibrary::paper_synthetic(4).unwrap();
        let sol = Solver::new(&tree, &lib).solve();
        let eval = elmore::evaluate(&tree, &lib, &[]).unwrap();
        assert!(
            (sol.slack.value() - eval.slack.value()).abs()
                <= 1e-9 * sol.slack.value().abs().max(1e-15),
            "{name}: {} vs {}",
            sol.slack,
            eval.slack
        );
    }
}

/// Variation-aware rows of the audit: degenerate yield requests fail with
/// *typed* errors (never a panic), statistically hopeless families report
/// honest numbers, and malformed specs are rejected at parse time with
/// their line number.
#[test]
fn degenerate_yield_requests_fail_typed_never_panic() {
    use fastbuf::netgen::VariationSpec;

    let session = Session::new(BufferLibrary::paper_synthetic(4).unwrap());
    let tree = netgen::line_net(Microns::new(8_000.0), 6);
    let spec = VariationSpec::gaussian(0.05, 0.5, 11);

    // Zero samples is a request error, not a panic in the quantile math.
    let err = session
        .request(&tree)
        .objective(Objective::YieldTarget {
            samples: 0,
            quantile: 0.5,
        })
        .variation(spec.clone())
        .solve()
        .unwrap_err();
    assert!(matches!(err, SolveError::NoSamples), "{err}");

    // A quantile outside (0, 1] is equally typed.
    for quantile in [0.0, -0.25, 1.5, f64::NAN] {
        let err = session
            .request(&tree)
            .objective(Objective::YieldTarget {
                samples: 8,
                quantile,
            })
            .variation(spec.clone())
            .solve()
            .unwrap_err();
        assert!(
            matches!(err, SolveError::InvalidQuantile { .. }),
            "quantile {quantile}: {err}"
        );
    }

    // A yield objective without a variation block samples the default
    // spec — all knobs fixed — so every sample is the nominal solve.
    let outcome = session
        .request(&tree)
        .objective(Objective::YieldTarget {
            samples: 4,
            quantile: 0.5,
        })
        .solve()
        .unwrap();
    let nominal = session.request(&tree).solve().unwrap();
    let nominal_bits = nominal.scenarios[0]
        .solution()
        .unwrap()
        .slack
        .value()
        .to_bits();
    let v = outcome.scenarios[0].variation().unwrap();
    assert!(v
        .samples
        .iter()
        .all(|s| s.slack.value().to_bits() == nominal_bits));

    // An out-of-domain spec built programmatically (negative sigma) is
    // caught before any sampling starts.
    let mut bad = VariationSpec::gaussian(0.05, 0.5, 1);
    bad.wire_r = fastbuf::netgen::Dist::Normal {
        mean: 1.0,
        sigma: -0.5,
    };
    let err = session
        .request(&tree)
        .objective(Objective::YieldTarget {
            samples: 8,
            quantile: 0.5,
        })
        .variation(bad)
        .solve()
        .unwrap_err();
    assert!(matches!(err, SolveError::InvalidVariation(_)), "{err}");
}

/// An unachievable slew limit makes every sample infeasible: the sweep
/// must report `yield 0.0` with `slew_ok = false` on each sample — honest
/// statistics, not a panic and not a fake pass.
#[test]
fn all_samples_slew_infeasible_reports_zero_yield() {
    use fastbuf::netgen::VariationSpec;

    let session = Session::new(BufferLibrary::paper_synthetic(4).unwrap());
    let tree = netgen::line_net(Microns::new(12_000.0), 8);
    let outcome = session
        .request(&tree)
        .objective(Objective::YieldTarget {
            samples: 8,
            quantile: 0.5,
        })
        .variation(VariationSpec::gaussian(0.08, 0.5, 3))
        .scenarios(vec![
            Scenario::named("hopeless").slew_limit(Seconds::from_pico(0.001))
        ])
        .solve()
        .unwrap();
    let v = outcome.scenarios[0].variation().unwrap();
    assert_eq!(v.summary.yield_fraction, 0.0);
    assert!(v.samples.iter().all(|s| !s.slew_ok));
    // The distribution itself is still populated and finite.
    assert!(v.summary.min_slack.value().is_finite());
    assert!(v.summary.quantile_slack.value().is_finite());
}

/// Yield solves on nets with zero buffer sites degrade to evaluating the
/// bare sampled trees — still a distribution, still no panic.
#[test]
fn siteless_nets_still_yield_a_distribution() {
    use fastbuf::netgen::VariationSpec;

    let session = Session::new(BufferLibrary::paper_synthetic(4).unwrap());
    for (name, tree) in degenerate_nets() {
        if tree.buffer_site_count() != 0 || tree.node_count() < 2 {
            continue;
        }
        let outcome = session
            .request(&tree)
            .objective(Objective::YieldTarget {
                samples: 4,
                quantile: 0.5,
            })
            .variation(VariationSpec::gaussian(0.05, 1.0, 9))
            .solve()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let v = outcome.scenarios[0].variation().unwrap();
        assert_eq!(v.samples.len(), 4, "{name}");
    }
}

/// Malformed variation text is rejected at parse time, with the offending
/// line number — NaN parameters, negative sigma, inverted uniform bounds,
/// and out-of-range locality all name their line.
#[test]
fn malformed_variation_specs_are_rejected_with_line_numbers() {
    use fastbuf::api::parse_variation_spec;

    for (line_no, text) in [
        (1, "wire-r normal 1.0 -0.05\n"),
        (1, "wire-r normal NaN 0.05\n"),
        (2, "wire-r normal 1.0 0.05\nwire-c uniform 1.2 0.8\n"),
        (3, "# comment\nseed 5\nlocality 2.0\n"),
        (2, "seed 5\nsink-cap normal 1.0 0.05 extra\n"),
        (1, "wire-r gaussian 1.0 0.05\n"),
    ] {
        let err = parse_variation_spec(text).unwrap_err();
        match err {
            SolveError::VariationParse { line, ref message } => {
                assert_eq!(line, line_no, "{text:?}: {message}");
            }
            other => panic!("{text:?}: expected a parse error, got {other}"),
        }
    }
}

/// Satellite: degenerate clock-generator parameters either fail typed (see
/// the netgen unit tests) or normalize into shapes that must then survive
/// *every* algorithm under *both* candidate kernels — a single-sink
/// caterpillar, a caterpillar whose trunk and stubs are all zero-length,
/// and a minimal one-level H-tree.
#[test]
fn normalized_degenerate_clock_shapes_solve_everywhere() {
    use fastbuf::netgen::{try_caterpillar_net, HTreeSpec};

    let lib = BufferLibrary::paper_synthetic(4).unwrap();
    let shapes = vec![
        (
            "caterpillar/single-sink",
            try_caterpillar_net(1, Microns::new(100.0), Microns::new(10.0)).unwrap(),
        ),
        (
            "caterpillar/zero-wires",
            try_caterpillar_net(3, Microns::ZERO, Microns::ZERO).unwrap(),
        ),
        (
            "htree/one-level-unsegmented",
            HTreeSpec {
                levels: 1,
                site_pitch: None,
                ..HTreeSpec::default()
            }
            .try_build()
            .unwrap(),
        ),
    ];
    for (name, tree) in &shapes {
        for algo in Algorithm::ALL {
            for kernel in [Kernel::Reference, Kernel::Slab] {
                let sol = Solver::new(tree, &lib)
                    .algorithm(algo)
                    .kernel(kernel)
                    .solve();
                assert!(!sol.slack.value().is_nan(), "{name}/{algo}/{kernel:?}");
                sol.verify(tree, &lib)
                    .unwrap_or_else(|e| panic!("{name}/{algo}/{kernel:?}: {e}"));
                // The skew recursion rides the same shapes without a bound
                // (bit-identity to the plain solve is pinned crate-wide in
                // tests/cts_equivalence.rs; here we pin panic-freedom).
                let skew = fastbuf::skew::SkewSolver::new(tree, &lib)
                    .algorithm(algo)
                    .solve();
                assert_eq!(
                    skew.slack.value().to_bits(),
                    sol.slack.value().to_bits(),
                    "{name}/{algo}/{kernel:?}"
                );
                assert!(skew.skew.value() >= 0.0, "{name}/{algo}: negative skew");
            }
        }
    }
}
