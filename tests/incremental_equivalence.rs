//! Differential proof of the ECO engine's headline guarantee: **every
//! incremental result is bit-identical to a from-scratch solve of the
//! edited tree** — same slack bits, same placements, same slew verdict —
//! across random edit scripts × netgen nets × all algorithms × slew
//! on/off, after *every* edit of every script.
//!
//! The main property runs 48 proptest cases of up to 50 edits each
//! (~1200+ edit comparisons per run; CI additionally runs this suite in
//! release). A second property pins the complexity claim: a single-leaf
//! edit on a branchy net recomputes strictly fewer nodes than the tree
//! holds.

use proptest::prelude::*;

use fastbuf::incremental::{Edit, EditScriptSpec, IncrementalSolver};
use fastbuf::prelude::*;

fn net(sinks: usize, seed: u64, pitch: f64) -> fastbuf::rctree::RoutingTree {
    fastbuf::netgen::RandomNetSpec {
        sinks,
        seed,
        die: Microns::new(1500.0 + 50.0 * sinks as f64),
        site_pitch: Some(Microns::new(pitch)),
        ..fastbuf::netgen::RandomNetSpec::default()
    }
    .build()
}

fn assert_identical(inc: &Solution, scratch: &Solution, context: &dyn std::fmt::Display) {
    assert_eq!(
        inc.slack.value().to_bits(),
        scratch.slack.value().to_bits(),
        "slack diverged {context}: incremental {} vs scratch {}",
        inc.slack,
        scratch.slack
    );
    assert_eq!(
        inc.root_q.value().to_bits(),
        scratch.root_q.value().to_bits(),
        "root Q diverged {context}"
    );
    assert_eq!(
        inc.root_load.value().to_bits(),
        scratch.root_load.value().to_bits(),
        "root load diverged {context}"
    );
    assert_eq!(
        inc.root_slew.value().to_bits(),
        scratch.root_slew.value().to_bits(),
        "root slew diverged {context}"
    );
    assert_eq!(
        inc.placements, scratch.placements,
        "placements diverged {context}"
    );
    assert_eq!(
        inc.slew_ok, scratch.slew_ok,
        "slew verdict diverged {context}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The differential property: replay a random script, comparing the
    /// cached solve against a from-scratch oracle after every edit.
    /// Scripts include SwapLibrary (full flush) every 11th edit; algorithm
    /// and slew mode are part of the sampled space.
    #[test]
    fn incremental_is_bit_identical_to_scratch(
        sinks in 2usize..26,
        net_seed in 0u64..400,
        pitch in 120.0f64..450.0,
        edits in 1usize..51,
        locality_pct in 5u32..101,
        script_seed in 0u64..1000,
        algo_idx in 0usize..3,
        slew_sel in 0u32..2,
    ) {
        let tree = net(sinks, net_seed, pitch);
        let lib = BufferLibrary::paper_synthetic(8).expect("b > 0");
        let mut options = SolverOptions::default();
        options.algorithm = Algorithm::ALL[algo_idx];
        if slew_sel == 1 {
            options.slew_limit = Some(Seconds::from_pico(320.0));
        }
        let mut solver = IncrementalSolver::new(tree, lib).with_options(options);

        // Cold cached solve must already match scratch.
        assert_identical(&solver.solve(), &solver.solve_scratch(), &"before any edit");

        let script = EditScriptSpec {
            edits,
            locality: locality_pct as f64 / 100.0,
            seed: script_seed,
            swap_library_every: 11,
        }
        .generate(solver.tree());
        for (k, edit) in script.iter().enumerate() {
            solver.apply(edit).expect("generated edits are valid");
            let inc = solver.solve();
            let scratch = solver.solve_scratch();
            assert_identical(&inc, &scratch, &format!("after edit {k} (`{edit}`)"));
            prop_assert_eq!(
                inc.stats.nodes_recomputed + inc.stats.nodes_reused,
                solver.tree().node_count() as u64
            );
        }
    }

    /// Complexity pin: on a branchy net, one sink-local edit recomputes
    /// strictly fewer nodes than the tree holds (and at least one), while
    /// still matching the scratch oracle.
    #[test]
    fn single_leaf_edits_recompute_strictly_fewer_nodes(
        sinks in 8usize..30,
        net_seed in 0u64..300,
        sink_sel in 0usize..1000,
        rat_scale in 0.6f64..1.4,
    ) {
        let tree = net(sinks, net_seed, 220.0);
        let lib = BufferLibrary::paper_synthetic(8).expect("b > 0");
        let mut solver = IncrementalSolver::new(tree, lib);
        let _ = solver.solve(); // warm the cache

        let sinks_list: Vec<_> = solver.tree().sinks().collect();
        let sink = sinks_list[sink_sel % sinks_list.len()];
        let NodeKind::Sink { required_arrival, .. } = *solver.tree().kind(sink) else {
            unreachable!("sinks() yields sinks")
        };
        solver
            .apply(&Edit::SetSinkRat {
                node: sink,
                rat: Seconds::new(required_arrival.value() * rat_scale),
            })
            .expect("sink edit is valid");

        let inc = solver.solve();
        let n = solver.tree().node_count() as u64;
        prop_assert!(inc.stats.nodes_recomputed >= 1);
        prop_assert!(
            inc.stats.nodes_recomputed < n,
            "single-leaf edit recomputed {} of {} nodes",
            inc.stats.nodes_recomputed,
            n
        );
        prop_assert_eq!(inc.stats.nodes_recomputed + inc.stats.nodes_reused, n);
        assert_identical(&inc, &solver.solve_scratch(), &"single-leaf edit");
    }
}

/// Deterministic heavy case kept outside proptest so `--nocapture` runs
/// show a stable, quotable count: 5 suites × 3 algorithms × slew on/off ×
/// 40 edits ≈ 1200 differential comparisons in one test.
#[test]
fn suite_scripts_stay_bit_identical_across_algorithms_and_slew() {
    let spec = fastbuf::netgen::SuiteSpec {
        nets: 5,
        max_sinks: 48,
        seed: 23,
        ..fastbuf::netgen::SuiteSpec::default()
    };
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let mut comparisons = 0usize;
    for i in 0..spec.nets {
        let tree = spec.build_net(i);
        for algo in Algorithm::ALL {
            for slew in [None, Some(Seconds::from_pico(350.0))] {
                let mut options = SolverOptions::default();
                options.algorithm = algo;
                options.slew_limit = slew;
                let mut solver =
                    IncrementalSolver::new(tree.clone(), lib.clone()).with_options(options);
                let script = EditScriptSpec {
                    edits: 40,
                    locality: 0.25,
                    seed: 100 + i as u64,
                    swap_library_every: 13,
                }
                .generate(solver.tree());
                for (k, edit) in script.iter().enumerate() {
                    solver.apply(edit).unwrap();
                    assert_identical(
                        &solver.solve(),
                        &solver.solve_scratch(),
                        &format!("net {i} algo {algo} slew {slew:?} edit {k}"),
                    );
                    comparisons += 1;
                }
            }
        }
    }
    assert!(
        comparisons >= 1000,
        "expected >= 1000 differential comparisons, ran {comparisons}"
    );
    println!("ran {comparisons} incremental-vs-scratch comparisons");
}
