//! Differential proof of the slab kernel's headline guarantee: **the
//! struct-of-arrays candidate kernel is bit-identical to the reference
//! `Vec<Candidate>` kernel** — same slack bits, same placements, same
//! root slew, same slew verdict — across netgen nets × all algorithms ×
//! slew on/off × intra-net worker counts, and across ECO edit scripts
//! where every cached re-solve is compared under both kernels.
//!
//! Bit-identity (`f64::to_bits`, not approximate equality) is the
//! contract that lets `BENCH_kernel.json` claim a kernel speedup rather
//! than a different algorithm: both layouts must run the same floating-
//! point program in the same order. The same contract extends to the
//! intra-net parallel mode: sibling subtrees are joined in tree order,
//! never completion order, so `slab@4` equals `slab@1` equals
//! `reference@1` to the last bit.

use proptest::prelude::*;

use fastbuf::incremental::{EditScriptSpec, IncrementalSolver};
use fastbuf::prelude::*;

fn net(sinks: usize, seed: u64, pitch: f64) -> fastbuf::rctree::RoutingTree {
    fastbuf::netgen::RandomNetSpec {
        sinks,
        seed,
        die: Microns::new(1500.0 + 50.0 * sinks as f64),
        site_pitch: Some(Microns::new(pitch)),
        ..fastbuf::netgen::RandomNetSpec::default()
    }
    .build()
}

fn assert_identical(slab: &Solution, reference: &Solution, context: &dyn std::fmt::Display) {
    assert_eq!(
        slab.slack.value().to_bits(),
        reference.slack.value().to_bits(),
        "slack diverged {context}: slab {} vs reference {}",
        slab.slack,
        reference.slack
    );
    assert_eq!(
        slab.root_q.value().to_bits(),
        reference.root_q.value().to_bits(),
        "root Q diverged {context}"
    );
    assert_eq!(
        slab.root_load.value().to_bits(),
        reference.root_load.value().to_bits(),
        "root load diverged {context}"
    );
    assert_eq!(
        slab.root_slew.value().to_bits(),
        reference.root_slew.value().to_bits(),
        "root slew diverged {context}"
    );
    assert_eq!(
        slab.placements, reference.placements,
        "placements diverged {context}"
    );
    assert_eq!(
        slab.slew_ok, reference.slew_ok,
        "slew verdict diverged {context}"
    );
}

fn options(
    algo: Algorithm,
    slew: Option<Seconds>,
    kernel: Kernel,
    workers: usize,
) -> SolverOptions {
    let mut options = SolverOptions::default();
    options.algorithm = algo;
    options.slew_limit = slew;
    options.kernel = kernel;
    options.intra_net_workers = workers;
    options
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The differential property: one random net and configuration, the
    /// reference kernel as the oracle, and the slab kernel at 1, 2, and 4
    /// intra-net workers all bit-identical to it. Library size, algorithm
    /// and slew mode are part of the sampled space; predecessor tracking
    /// is on so placements are compared too.
    #[test]
    fn slab_kernel_is_bit_identical_to_reference(
        sinks in 2usize..40,
        net_seed in 0u64..500,
        pitch in 120.0f64..450.0,
        lib_b in 1usize..12,
        algo_idx in 0usize..3,
        slew_sel in 0u32..2,
    ) {
        let tree = net(sinks, net_seed, pitch);
        let lib = BufferLibrary::paper_synthetic(lib_b).expect("b > 0");
        let algo = Algorithm::ALL[algo_idx];
        let slew = (slew_sel == 1).then(|| Seconds::from_pico(320.0));

        let reference = Solver::new(&tree, &lib)
            .with_options(options(algo, slew, Kernel::Reference, 1))
            .solve();
        for workers in [1usize, 2, 4] {
            let slab = Solver::new(&tree, &lib)
                .with_options(options(algo, slew, Kernel::Slab, workers))
                .solve();
            assert_identical(
                &slab,
                &reference,
                &format!("(slab@{workers}, {algo}, slew {slew:?})"),
            );
        }
    }

    /// ECO scripts under both kernels: two incremental solvers replay the
    /// same random edit script, one per kernel, and every cached re-solve
    /// must agree bit-for-bit (the slab also re-solves with 2 intra-net
    /// workers requested — a no-op for cached solves, which must not
    /// change the bits either).
    #[test]
    fn cached_re_solves_agree_across_kernels(
        sinks in 2usize..24,
        net_seed in 0u64..300,
        edits in 1usize..31,
        script_seed in 0u64..1000,
        algo_idx in 0usize..3,
        slew_sel in 0u32..2,
    ) {
        let tree = net(sinks, net_seed, 220.0);
        let lib = BufferLibrary::paper_synthetic(8).expect("b > 0");
        let algo = Algorithm::ALL[algo_idx];
        let slew = (slew_sel == 1).then(|| Seconds::from_pico(320.0));

        let mut on_reference = IncrementalSolver::new(tree.clone(), lib.clone())
            .with_options(options(algo, slew, Kernel::Reference, 1));
        let mut on_slab = IncrementalSolver::new(tree, lib)
            .with_options(options(algo, slew, Kernel::Slab, 2));
        assert_identical(&on_slab.solve(), &on_reference.solve(), &"cold solve");

        let script = EditScriptSpec {
            edits,
            locality: 0.3,
            seed: script_seed,
            swap_library_every: 11,
        }
        .generate(on_reference.tree());
        for (k, edit) in script.iter().enumerate() {
            on_reference.apply(edit).expect("generated edits are valid");
            on_slab.apply(edit).expect("generated edits are valid");
            assert_identical(
                &on_slab.solve(),
                &on_reference.solve(),
                &format!("after edit {k} (`{edit}`)"),
            );
        }
    }
}

/// Deterministic heavy case kept outside proptest so `--nocapture` runs
/// show a stable, quotable count: a 24-net suite × 3 algorithms × slew
/// on/off × slab at {1, 2, 4} workers, every configuration compared
/// bit-for-bit against the reference kernel.
#[test]
fn suite_nets_stay_bit_identical_across_kernels_and_workers() {
    let spec = fastbuf::netgen::SuiteSpec {
        nets: 24,
        max_sinks: 64,
        seed: 41,
        ..fastbuf::netgen::SuiteSpec::default()
    };
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let mut comparisons = 0usize;
    for i in 0..spec.nets {
        let tree = spec.build_net(i);
        for algo in Algorithm::ALL {
            for slew in [None, Some(Seconds::from_pico(350.0))] {
                let reference = Solver::new(&tree, &lib)
                    .with_options(options(algo, slew, Kernel::Reference, 1))
                    .solve();
                for workers in [1usize, 2, 4] {
                    let slab = Solver::new(&tree, &lib)
                        .with_options(options(algo, slew, Kernel::Slab, workers))
                        .solve();
                    assert_identical(
                        &slab,
                        &reference,
                        &format!("net {i} algo {algo} slew {slew:?} slab@{workers}"),
                    );
                    comparisons += 1;
                }
            }
        }
    }
    assert!(
        comparisons >= 400,
        "expected >= 400 differential comparisons, ran {comparisons}"
    );
    println!("ran {comparisons} slab-vs-reference comparisons");
}
