//! Equivalence properties of the design-level pricing stack
//! (`fastbuf-global` + `SolverOptions::site_prices`):
//!
//! 1. the **priced inner solve is exact**: on tiny nets it matches an
//!    exhaustive enumeration of the priced objective
//!    `slack(assignment) − Σ price(placed site)`, for every algorithm and
//!    kernel, and pricing at zero is bit-identical to no pricing at all;
//! 2. the **outer Lagrangian loop is deterministic**: bit-identical
//!    feasibility, history, prices, slacks, and placements at every
//!    worker count and across warm vs from-scratch inner solves;
//! 3. a **converged loop respects every site capacity**, and degenerate
//!    fleets return typed errors instead of panicking.

use std::sync::Arc;

use proptest::prelude::*;

use fastbuf::global::{GlobalError, GlobalOutcome, GlobalReport, SiteUse};
use fastbuf::netgen::SharedSuiteSpec;
use fastbuf::prelude::*;
use fastbuf::rctree::{elmore, RoutingTree};
use fastbuf::Placement;

/// Tiny nets (≤ 6 sites) for the exhaustive priced oracle.
fn tiny_net(sites: usize, length_um: f64) -> RoutingTree {
    fastbuf::netgen::line_net(Microns::new(length_um), sites)
}

/// Enumerates every assignment and returns the best *priced* slack in
/// seconds: `slack − Σ price(placed site)`.
fn priced_brute_force(tree: &RoutingTree, lib: &BufferLibrary, prices: &[f64]) -> f64 {
    let sites: Vec<NodeId> = tree.buffer_sites().collect();
    let choices = lib.len() + 1;
    let total = choices.pow(sites.len() as u32);
    assert!(total <= 200_000, "brute force domain too large: {total}");
    let mut best = f64::NEG_INFINITY;
    for code in 0..total {
        let mut c = code;
        let mut placements = Vec::new();
        for &site in &sites {
            let pick = c % choices;
            c /= choices;
            if pick > 0 {
                placements.push((site, BufferTypeId::new(pick - 1)));
            }
        }
        let report = elmore::evaluate(tree, lib, &placements).expect("legal assignment");
        let charged: f64 = placements
            .iter()
            .map(|(node, _)| prices.get(node.index()).copied().unwrap_or(0.0))
            .sum();
        best = best.max(report.slack.value() - charged);
    }
    best
}

/// A small shared-site fleet drawn from seeded parameters.
fn arb_fleet() -> impl Strategy<Value = (SharedSuiteSpec, u32)> {
    (3usize..7, 0u64..500, 1u32..3).prop_map(|(nets, seed, cap)| {
        (
            SharedSuiteSpec {
                nets,
                pool_sites: 16,
                sites_per_net: 6,
                seed,
                ..SharedSuiteSpec::default()
            },
            cap,
        )
    })
}

fn build_fleet(spec: &SharedSuiteSpec) -> Vec<GlobalNet> {
    spec.build()
        .into_iter()
        .enumerate()
        .map(|(i, net)| GlobalNet::new(format!("shared/{i}"), net.tree, net.site_of))
        .collect()
}

/// Everything observable about an outcome, bit-exact.
type Fingerprint = (bool, usize, Vec<(u64, Vec<Placement>)>, Vec<SiteUse>);

fn fingerprint(outcome: &GlobalOutcome) -> Fingerprint {
    let GlobalReport {
        feasible,
        iterations,
        ref utilization,
        ref history,
        ..
    } = outcome.report;
    // History rows are part of determinism too — fold them into the
    // utilization check by asserting they are identical separately at
    // the call sites (IterationRow is PartialEq) and fingerprinting the
    // rest here.
    let _ = history;
    (
        feasible,
        iterations,
        outcome
            .solutions
            .iter()
            .map(|s| (s.slack.value().to_bits(), s.placements.clone()))
            .collect(),
        utilization.clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (1) The priced DP is exact for the priced objective, on every
    /// algorithm and kernel.
    #[test]
    fn priced_solve_matches_priced_enumeration(
        sites in 2usize..6,
        length_um in 3000.0f64..9000.0,
        b in 2usize..4,
        price_seed in 0u64..1000,
    ) {
        let tree = tiny_net(sites, length_um);
        let lib = BufferLibrary::paper_synthetic_jittered(b, price_seed).expect("b >= 2");
        // Deterministic per-node prices in [0, 60) ps, only on sites.
        let mut prices = vec![0.0f64; tree.node_count()];
        for (j, node) in tree.buffer_sites().enumerate() {
            let x = (price_seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(j as u32 * 7) >> 40) as f64
                / (1u64 << 24) as f64;
            prices[node.index()] = x * 60e-12;
        }
        let best = priced_brute_force(&tree, &lib, &prices);
        let shared: Arc<[f64]> = Arc::from(prices.as_slice());
        for algo in [Algorithm::Lillis, Algorithm::LiShi] {
            for kernel in [Kernel::Reference, Kernel::Slab] {
                let sol = Solver::new(&tree, &lib)
                    .algorithm(algo)
                    .kernel(kernel)
                    .site_prices(Some(Arc::clone(&shared)))
                    .solve();
                let tol = 1e-9 * best.abs().max(1e-12);
                prop_assert!(
                    (sol.slack.value() - best).abs() <= tol,
                    "{algo} {kernel:?}: priced DP {} vs enumeration {}",
                    sol.slack.value(), best
                );
                // The reported placements really are charged what the DP
                // says: forward-evaluate and re-subtract the prices.
                let measured = elmore::evaluate(
                    &tree, &lib,
                    &sol.placements.iter().map(|p| (p.node, p.buffer)).collect::<Vec<_>>(),
                ).expect("reconstruction is legal");
                let charged: f64 = sol.placements.iter()
                    .map(|p| prices[p.node.index()])
                    .sum();
                prop_assert!(
                    (measured.slack.value() - charged - sol.slack.value()).abs() <= tol,
                    "reconstruction does not achieve the priced slack"
                );
            }
        }
    }

    /// (1b) A zero price vector is bit-identical to no prices at all —
    /// the exactness argument needs `x - 0.0` to change nothing.
    #[test]
    fn zero_prices_are_bit_identical_to_unpriced(
        sites in 2usize..8,
        length_um in 3000.0f64..12000.0,
        b in 2usize..6,
    ) {
        let tree = tiny_net(sites, length_um);
        let lib = BufferLibrary::paper_synthetic(b).expect("b >= 2");
        let zeros: Arc<[f64]> = Arc::from(vec![0.0f64; tree.node_count()].as_slice());
        let unpriced = Solver::new(&tree, &lib).solve();
        let priced = Solver::new(&tree, &lib).site_prices(Some(zeros)).solve();
        prop_assert_eq!(unpriced.slack.value().to_bits(), priced.slack.value().to_bits());
        prop_assert_eq!(unpriced.placements, priced.placements);
    }

    /// (2) + (3) The outer loop is bit-identical at every worker count
    /// and across warm vs scratch, and a feasible report means every
    /// site is within capacity.
    #[test]
    fn outer_loop_is_deterministic_and_respects_capacity(
        (spec, cap) in arb_fleet(),
    ) {
        let lib = BufferLibrary::paper_synthetic(4).expect("b > 0");
        let capacity = SiteCapacityMap::uniform(spec.pool_sites, cap);
        let mut baseline: Option<(GlobalOutcome, Vec<fastbuf::global::IterationRow>)> = None;
        for workers in [1usize, 2, 4] {
            for warm in [true, false] {
                let outcome = GlobalSolver::new(build_fleet(&spec), lib.clone(), capacity.clone())
                    .workers(workers)
                    .warm(warm)
                    .solve()
                    .expect("generated fleets are valid");
                match &baseline {
                    None => {
                        // (3) capacity is law once the loop reports
                        // feasible; either way usage is fully reported.
                        if outcome.report.feasible {
                            for u in &outcome.report.utilization {
                                prop_assert!(
                                    u.usage <= u.capacity,
                                    "feasible loop left site {} at {}/{}",
                                    u.site, u.usage, u.capacity
                                );
                            }
                        }
                        let history = outcome.report.history.clone();
                        baseline = Some((outcome, history));
                    }
                    Some((base, history)) => {
                        prop_assert_eq!(
                            fingerprint(base), fingerprint(&outcome),
                            "workers={} warm={} diverged", workers, warm
                        );
                        prop_assert_eq!(
                            history, &outcome.report.history,
                            "history diverged at workers={} warm={}", workers, warm
                        );
                    }
                }
            }
        }
    }
}

/// Degenerate fleets return typed errors (or clean reports) — never a
/// panic, never a lie about feasibility.
#[test]
fn degenerate_fleets_are_typed() {
    let lib = BufferLibrary::paper_synthetic(4).unwrap();

    // Empty fleet: a typed error.
    let err = GlobalSolver::new(Vec::new(), lib.clone(), SiteCapacityMap::uniform(4, 1))
        .solve()
        .unwrap_err();
    assert_eq!(err, GlobalError::EmptyFleet);

    let spec = SharedSuiteSpec {
        nets: 3,
        pool_sites: 16,
        sites_per_net: 6,
        ..SharedSuiteSpec::default()
    };

    // Zero capacity everywhere: converges by pricing every buffer out.
    let outcome = GlobalSolver::new(
        build_fleet(&spec),
        lib.clone(),
        SiteCapacityMap::uniform(spec.pool_sites, 0),
    )
    .solve()
    .expect("zero capacity is stringent, not invalid");
    assert!(outcome.report.feasible);
    assert_eq!(outcome.report.total_buffers, 0);

    // Capacity at least total demand: one iteration, zero prices.
    let outcome = GlobalSolver::new(
        build_fleet(&spec),
        lib,
        SiteCapacityMap::uniform(spec.pool_sites, (spec.nets * spec.sites_per_net) as u32),
    )
    .solve()
    .unwrap();
    assert!(outcome.report.feasible);
    assert_eq!(outcome.report.iterations, 1);
    assert!(outcome
        .report
        .utilization
        .iter()
        .all(|u| u.price.value() == 0.0));
}
