//! Cross-algorithm agreement: the O(b²n²) Lillis baseline and the O(bn²)
//! Li–Shi algorithm must find the *identical* optimal slack on every
//! topology (Theorem 1 of the paper), and every reconstructed solution must
//! survive independent forward Elmore re-evaluation.

use fastbuf::netgen::{caterpillar_net, h_tree, line_net, RandomNetSpec};
use fastbuf::prelude::*;
use fastbuf::rctree::RoutingTree;

fn families() -> Vec<(String, RoutingTree)> {
    let mut nets = Vec::new();
    for sites in [0usize, 1, 5, 25] {
        nets.push((
            format!("line/{sites}"),
            line_net(Microns::new(9000.0), sites),
        ));
    }
    nets.push((
        "caterpillar/24".into(),
        caterpillar_net(24, Microns::new(350.0), Microns::new(30.0)),
    ));
    nets.push(("htree/2".into(), h_tree(2)));
    nets.push(("htree/3".into(), h_tree(3)));
    for seed in 0..6u64 {
        let sinks = 12 + 11 * seed as usize;
        nets.push((
            format!("random/{seed}"),
            RandomNetSpec {
                sinks,
                seed,
                site_pitch: Some(Microns::new(120.0)),
                ..RandomNetSpec::default()
            }
            .build(),
        ));
    }
    nets
}

#[test]
fn lillis_and_lishi_agree_everywhere_and_verify() {
    for b in [1usize, 2, 8, 17] {
        let lib = BufferLibrary::paper_synthetic_jittered(b, 3).unwrap();
        for (name, tree) in families() {
            let lillis = Solver::new(&tree, &lib)
                .algorithm(Algorithm::Lillis)
                .solve();
            let lishi = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
            let tol = 1e-9 * lillis.slack.picos().abs().max(1.0);
            assert!(
                (lillis.slack.picos() - lishi.slack.picos()).abs() <= tol,
                "{name} b={b}: lillis {} vs lishi {}",
                lillis.slack,
                lishi.slack
            );
            lillis
                .verify(&tree, &lib)
                .unwrap_or_else(|e| panic!("{name} b={b}: lillis verification failed: {e}"));
            lishi
                .verify(&tree, &lib)
                .unwrap_or_else(|e| panic!("{name} b={b}: lishi verification failed: {e}"));
        }
    }
}

#[test]
fn permanent_pruning_never_beats_the_exact_optimum() {
    let lib = BufferLibrary::paper_synthetic(16).unwrap();
    for (name, tree) in families() {
        let exact = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
        let perm = Solver::new(&tree, &lib)
            .algorithm(Algorithm::LiShiPermanent)
            .solve();
        assert!(
            perm.slack.picos() <= exact.slack.picos() + 1e-6,
            "{name}: permanent {} beats exact {} — impossible",
            perm.slack,
            exact.slack
        );
        // Whatever it returns must still be a *real*, achievable solution.
        perm.verify(&tree, &lib)
            .unwrap_or_else(|e| panic!("{name}: permanent verification failed: {e}"));
    }
}

#[test]
fn permanent_pruning_is_exact_on_two_pin_nets() {
    let lib = BufferLibrary::paper_synthetic(32).unwrap();
    for sites in [1usize, 7, 31, 63] {
        let tree = line_net(Microns::new(12_000.0), sites);
        let exact = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
        let perm = Solver::new(&tree, &lib)
            .algorithm(Algorithm::LiShiPermanent)
            .solve();
        assert!(
            (perm.slack.picos() - exact.slack.picos()).abs() < 1e-6,
            "sites={sites}: 2-pin permanent pruning must be loss-free"
        );
    }
}

#[test]
fn larger_library_never_hurts_when_nested() {
    // Nested libraries (prefixes of one generator) can only improve slack.
    let full = BufferLibrary::paper_synthetic(16).unwrap();
    let tree = RandomNetSpec {
        sinks: 40,
        seed: 5,
        ..RandomNetSpec::default()
    }
    .build();
    let mut last = f64::NEG_INFINITY;
    for b in [1usize, 2, 4, 8, 16] {
        let ids: Vec<_> = full.ids().take(b).collect();
        let sub = full.subset(&ids).unwrap();
        let slack = Solver::new(&tree, &sub).solve().slack.picos();
        assert!(
            slack >= last - 1e-9,
            "slack must be monotone in nested library size: b={b}: {slack} < {last}"
        );
        last = slack;
    }
}

#[test]
fn more_buffer_sites_never_hurt() {
    use fastbuf::rctree::segment::segment_uniform;
    let lib = BufferLibrary::paper_synthetic(8).unwrap();
    let base = RandomNetSpec {
        sinks: 30,
        seed: 11,
        site_pitch: None,
        ..RandomNetSpec::default()
    }
    .build();
    let mut last = f64::NEG_INFINITY;
    for pieces in [1usize, 2, 4] {
        let tree = segment_uniform(&base, pieces).unwrap().tree;
        let slack = Solver::new(&tree, &lib).solve().slack.picos();
        assert!(
            slack >= last - 1e-9,
            "pieces={pieces}: refining sites must not lose slack ({slack} < {last})"
        );
        last = slack;
    }
}

#[test]
fn algorithms_agree_under_subset_site_constraints() {
    use fastbuf::rctree::segment::segment_uniform;
    use std::sync::Arc;

    let lib = BufferLibrary::paper_synthetic(6).unwrap();
    let base = RandomNetSpec {
        sinks: 18,
        seed: 3,
        site_pitch: None,
        ..RandomNetSpec::default()
    }
    .build();
    let seg = segment_uniform(&base, 3).unwrap().tree;

    // Rebuild with varied constraints: every third site only allows the two
    // weakest types, every fifth is disabled entirely.
    let mut b = TreeBuilder::new();
    for node in seg.node_ids() {
        match seg.kind(node) {
            NodeKind::Source { driver } => {
                b.source(*driver);
            }
            NodeKind::Sink {
                capacitance,
                required_arrival,
            } => {
                b.sink(*capacitance, *required_arrival);
            }
            NodeKind::Internal => {
                let idx = node.index();
                let constraint = if !seg.is_buffer_site(node) || idx % 5 == 0 {
                    SiteConstraint::NotASite
                } else if idx % 3 == 0 {
                    let mut set = BufferSet::empty(lib.len());
                    set.insert(BufferTypeId::new(0));
                    set.insert(BufferTypeId::new(1));
                    SiteConstraint::Subset(Arc::new(set))
                } else {
                    SiteConstraint::AnyBuffer
                };
                b.internal_with(constraint);
            }
        }
    }
    for node in seg.node_ids() {
        if let (Some(p), Some(w)) = (seg.parent(node), seg.wire_to_parent(node)) {
            b.connect(p, node, *w).unwrap();
        }
    }
    let tree = b.build().unwrap();

    let lillis = Solver::new(&tree, &lib)
        .algorithm(Algorithm::Lillis)
        .solve();
    let lishi = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
    assert!((lillis.slack.picos() - lishi.slack.picos()).abs() < 1e-6);
    lishi.verify(&tree, &lib).unwrap();
    // No placement may violate its site constraint (verify checks this too,
    // but assert explicitly for clarity).
    for p in &lishi.placements {
        assert!(tree.site_constraint(p.node).allows(p.buffer));
    }
}
