//! Differential proof of the Monte-Carlo machinery's headline guarantee:
//! **every cached sampled solve is bit-identical to a from-scratch solve
//! of the same sampled scenario**, and the reported distribution is a pure
//! function of `(spec, samples, quantile)` — independent of worker count
//! and of the order samples happen to finish in.
//!
//! Three layers:
//! 1. A proptest over random [`VariationSpec`]s × netgen nets: replaying a
//!    sample family through one warm [`IncrementalSolver`] (the cache-reuse
//!    path the API uses) matches both `solve_scratch` of the same state
//!    and a cold solver handed only that sample's script — and the API's
//!    per-sample slacks are those same bits.
//! 2. Byte-identical `VariationOutcome` JSON across 1/2/4 workers.
//! 3. An exhaustive oracle on ≤6-site nets: each sample's DP slack is the
//!    true optimum of that sampled tree under brute-force enumeration.

use proptest::prelude::*;

use fastbuf::api::{parse_variation_spec, wire};
use fastbuf::netgen::{Dist, RandomNetSpec, VariationSpec};
use fastbuf::prelude::*;
use fastbuf::rctree::{elmore, NodeId, RoutingTree};

fn net(sinks: usize, seed: u64) -> RoutingTree {
    RandomNetSpec {
        sinks,
        seed,
        die: Microns::new(1500.0 + 60.0 * sinks as f64),
        site_pitch: Some(Microns::new(260.0)),
        ..RandomNetSpec::default()
    }
    .build()
}

/// A spec with a caller-chosen subset of knobs enabled (bit per knob),
/// so the property space covers wire-only, sink-only, derate-only, and
/// fully mixed families.
fn spec_of(mask: u32, sigma: f64, locality: f64, seed: u64) -> VariationSpec {
    let knob = |bit: u32| {
        if mask & (1 << bit) != 0 {
            Dist::Normal { mean: 1.0, sigma }
        } else {
            Dist::Fixed
        }
    };
    VariationSpec {
        wire_r: knob(0),
        wire_c: knob(1),
        buffer_delay: knob(2),
        buffer_drive: knob(3),
        sink_cap: knob(4),
        rat_derate: knob(5),
        locality,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The differential property. One warm solver replays the whole
    /// family in order (exactly the API's per-worker path); after each
    /// sample it must match (a) its own scratch solve, and (b) a cold
    /// solver that applied only this sample's script to the pristine
    /// tree — proving scripts are absolute (no cross-sample residue) and
    /// the cache is exact. The API's reported slacks are then those bits.
    #[test]
    fn cached_sample_solves_are_bit_identical_to_scratch(
        sinks in 3usize..14,
        net_seed in 0u64..200,
        mask in 1u32..64,
        sigma in 0.005f64..0.12,
        locality in 0.05f64..1.0,
        spec_seed in 0u64..500,
        samples in 2usize..5,
    ) {
        let tree = net(sinks, net_seed);
        let lib = BufferLibrary::paper_synthetic(6).expect("b > 0");
        let spec = spec_of(mask, sigma, locality, spec_seed);
        prop_assert!(spec.is_valid());
        let scripts = spec.expand(&tree, samples);
        prop_assert_eq!(scripts.len(), samples);

        let mut warm = IncrementalSolver::new(tree.clone(), lib.clone());
        let mut warm_slacks = Vec::new();
        for (k, script) in scripts.iter().enumerate() {
            warm.apply_all(script).expect("sampled edits are valid");
            let inc = warm.solve();
            let scratch = warm.solve_scratch();
            prop_assert_eq!(
                inc.slack.value().to_bits(),
                scratch.slack.value().to_bits(),
                "sample {} diverged from scratch: warm {} vs scratch {}",
                k, inc.slack, scratch.slack
            );
            prop_assert_eq!(inc.slew_ok, scratch.slew_ok, "sample {}", k);

            // Scripts are absolute: a cold solver given only this script
            // lands on the exact same tree and the exact same bits.
            let mut cold = IncrementalSolver::new(tree.clone(), lib.clone());
            cold.apply_all(script).expect("sampled edits are valid");
            let cold_solution = cold.solve_scratch();
            prop_assert_eq!(
                inc.slack.value().to_bits(),
                cold_solution.slack.value().to_bits(),
                "sample {} carries residue from sample {}", k, k.wrapping_sub(1)
            );
            warm_slacks.push(inc.slack.value().to_bits());
        }

        // The API's yield solve reports exactly those bits, per sample.
        let session = Session::new(lib);
        let outcome = session
            .request(&tree)
            .objective(Objective::YieldTarget { samples, quantile: 0.5 })
            .variation(spec)
            .solve()
            .expect("yield solve succeeds");
        let v = outcome.scenarios[0].variation().expect("variation result");
        prop_assert_eq!(v.samples.len(), samples);
        for (k, sample) in v.samples.iter().enumerate() {
            prop_assert_eq!(sample.index, k);
            prop_assert_eq!(
                sample.slack.value().to_bits(),
                warm_slacks[k],
                "API sample {} disagrees with the differential replay", k
            );
        }
    }
}

/// Worker-count independence: the full serialized outcome — per-sample
/// slacks, summary statistics, cache counters — is byte-identical across
/// 1, 2, and 4 workers, for several spec shapes. The summary fold sorts
/// by sample index before touching floats, so completion order (which
/// worker finished first) cannot leak into the JSON.
#[test]
fn outcome_json_is_byte_identical_across_worker_counts() {
    let lib = BufferLibrary::paper_synthetic(6).unwrap();
    let session = Session::new(lib);
    for (sinks, net_seed, mask, quantile) in [
        (10usize, 3u64, 0b111111u32, 0.5f64),
        (14, 17, 0b000011, 0.9),
        (7, 8, 0b110100, 0.1),
    ] {
        let tree = net(sinks, net_seed);
        let spec = spec_of(mask, 0.08, 0.4, 1000 + net_seed);
        let mut renders = Vec::new();
        for workers in [1usize, 2, 4] {
            let outcome = session
                .request(&tree)
                .objective(Objective::YieldTarget {
                    samples: 16,
                    quantile,
                })
                .variation(spec.clone())
                .workers(workers)
                .solve()
                .unwrap();
            renders.push(wire::variation_record(&outcome.scenarios[0], false, true).unwrap());
        }
        assert_eq!(renders[0], renders[1], "1 vs 2 workers diverged");
        assert_eq!(renders[0], renders[2], "1 vs 4 workers diverged");
    }
}

/// Text round-trip composes with sampling: a spec written and re-parsed
/// produces the identical sample families (same seed, same scripts, same
/// solve bits end to end through the API).
#[test]
fn spec_text_round_trip_preserves_every_sample_bit() {
    let tree = net(9, 42);
    let lib = BufferLibrary::paper_synthetic(5).unwrap();
    let session = Session::new(lib);
    let spec = spec_of(0b101101, 0.06, 0.3, 77);
    let reparsed =
        parse_variation_spec(&fastbuf::netgen::write_variation(&spec)).expect("round-trips");
    let solve = |s: VariationSpec| {
        let outcome = session
            .request(&tree)
            .objective(Objective::YieldTarget {
                samples: 8,
                quantile: 0.5,
            })
            .variation(s)
            .solve()
            .unwrap();
        wire::variation_record(&outcome.scenarios[0], false, true).unwrap()
    };
    assert_eq!(solve(spec), solve(reparsed));
}

/// Enumerates all `(b+1)^sites` assignments of `tree` and returns the
/// best forward-evaluated slack (the sampled tree carries its wire edits,
/// sink edits, and site derates, and the forward evaluator reads them).
fn brute_force_best(tree: &RoutingTree, lib: &BufferLibrary) -> f64 {
    let sites: Vec<NodeId> = tree.buffer_sites().collect();
    let choices = lib.len() + 1;
    let total = choices.pow(sites.len() as u32);
    assert!(total <= 200_000, "brute force domain too large: {total}");
    let mut best = f64::NEG_INFINITY;
    for code in 0..total {
        let mut c = code;
        let mut placements = Vec::new();
        let mut legal = true;
        for &site in &sites {
            let pick = c % choices;
            c /= choices;
            if pick > 0 {
                let id = BufferTypeId::new(pick - 1);
                if !tree.site_constraint(site).allows(id) {
                    legal = false;
                    break;
                }
                placements.push((site, id));
            }
        }
        if !legal {
            continue;
        }
        let report = elmore::evaluate(tree, lib, &placements).expect("legal assignment");
        best = best.max(report.slack.picos());
    }
    best
}

/// The oracle: on nets small enough to enumerate, every sample's DP slack
/// is the true optimum of that sample's tree — variation does not merely
/// stay self-consistent, it stays *correct*.
#[test]
fn per_sample_slacks_match_exhaustive_enumeration() {
    let lib = BufferLibrary::paper_synthetic(3).unwrap();
    let session = Session::new(lib.clone());
    let mut nets: Vec<RoutingTree> = vec![fastbuf::netgen::line_net(Microns::new(6_000.0), 4)];
    for seed in 0..10u64 {
        let t = RandomNetSpec {
            sinks: 3 + (seed as usize % 3),
            die: Microns::new(2500.0),
            seed,
            site_pitch: Some(Microns::new(900.0)),
            ..RandomNetSpec::default()
        }
        .build();
        if t.buffer_site_count() <= 6 {
            nets.push(t);
        }
    }
    assert!(nets.len() >= 3, "need a few enumerable nets");

    let samples = 6usize;
    let mut compared = 0usize;
    for (n, tree) in nets.iter().enumerate() {
        let spec = spec_of(0b111111, 0.09, 1.0, 5000 + n as u64);
        let outcome = session
            .request(tree)
            .objective(Objective::YieldTarget {
                samples,
                quantile: 0.5,
            })
            .variation(spec.clone())
            .solve()
            .unwrap();
        let v = outcome.scenarios[0].variation().unwrap();
        let scripts = spec.expand(tree, samples);
        for (k, sample) in v.samples.iter().enumerate() {
            // Materialize sample k's tree and enumerate it.
            let mut solver = IncrementalSolver::new(tree.clone(), lib.clone());
            solver.apply_all(&scripts[k]).unwrap();
            let best = brute_force_best(solver.tree(), &lib);
            assert!(
                (sample.slack.picos() - best).abs() < 1e-6,
                "net {n} sample {k}: DP {} vs brute force {}",
                sample.slack.picos(),
                best
            );
            compared += 1;
        }
    }
    assert!(compared >= 18, "ran only {compared} oracle comparisons");
    println!("oracle-checked {compared} sampled solves");
}
