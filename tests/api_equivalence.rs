//! Equivalence suite: the unified `fastbuf::api` request layer must be
//! **bit-identical** to the legacy entry points it fronts.
//!
//! The acceptance bar of the API redesign: a `SolveRequest` with a single
//! default scenario reproduces `Solver::new(..).solve()` exactly (slack
//! bit patterns, placements, frontier points), across the netgen suites,
//! for every algorithm, with and without slew limits; and a multi-scenario
//! request equals the corresponding independent legacy solves while
//! sharing one workspace. CI runs this suite in release mode too, so the
//! scenario fan-out is exercised under optimization.

use std::sync::Arc;

use fastbuf::buflib::units::Seconds;
use fastbuf::cost::CostSolver;
use fastbuf::netgen::SuiteSpec;
use fastbuf::polarity::{Polarity, PolaritySolver};
use fastbuf::prelude::*;
use fastbuf::rctree::RoutingTree;
use fastbuf::VerifyError;

fn suite() -> Vec<RoutingTree> {
    SuiteSpec {
        nets: 8,
        max_sinks: 40,
        seed: 11,
        ..SuiteSpec::default()
    }
    .build()
}

fn lib() -> BufferLibrary {
    BufferLibrary::paper_synthetic(8).unwrap()
}

/// Golden anchor: the default-scenario request path reproduces the same
/// slack bit pattern the legacy solver is pinned to (recorded before the
/// `DelayModel` seam existed — see
/// `infinite_slew_limit_elmore_is_bit_identical_to_pre_seam_golden` in
/// `crates/core/src/engine.rs`). This makes the "thin shim" claim
/// transitive: request path ≡ legacy solver ≡ pre-seam arithmetic.
#[test]
fn default_request_hits_the_pre_seam_golden_bits() {
    let lib = lib();
    let session = Session::new(lib);
    let tree = fastbuf::netgen::line_net(fastbuf::buflib::units::Microns::new(10_000.0), 9);
    let outcome = session.request(&tree).solve().unwrap();
    let solution = outcome.solution().unwrap();
    assert_eq!(
        solution.slack.value().to_bits(),
        0x3e1a5a255d0ebf4c,
        "request-path slack drifted from the pre-seam golden: {}",
        solution.slack
    );
    assert_eq!(solution.placements.len(), 2);
}

/// Legacy `Solver` vs default-scenario `SolveRequest`: bit-identical
/// across the suite, all algorithms, slew on and off.
#[test]
fn request_equals_legacy_solver_all_algorithms_and_slew_modes() {
    let lib = lib();
    let session = Session::new(lib.clone());
    let nets = suite();
    for (i, tree) in nets.iter().enumerate() {
        for algo in Algorithm::ALL {
            for slew in [None, Some(Seconds::from_pico(300.0))] {
                let mut legacy = Solver::new(tree, &lib).algorithm(algo);
                let mut scenario = Scenario::named("corner").algorithm(algo);
                if let Some(limit) = slew {
                    legacy = legacy.slew_limit(limit);
                    scenario = scenario.slew_limit(limit);
                }
                let want = legacy.solve();
                let outcome = session.request(tree).scenario(scenario).solve().unwrap();
                let got = outcome.scenario("corner").unwrap().solution().unwrap();
                assert_eq!(
                    got.slack.value().to_bits(),
                    want.slack.value().to_bits(),
                    "net {i}, {algo}, slew {slew:?}"
                );
                assert_eq!(got.placements, want.placements, "net {i}, {algo}");
                assert_eq!(got.slew_ok, want.slew_ok, "net {i}, {algo}");
                assert_eq!(
                    got.stats.arena_entries, want.stats.arena_entries,
                    "net {i}, {algo}"
                );
            }
        }
    }
}

/// Legacy `CostSolver` vs `Objective::SlackCost`: identical frontiers.
#[test]
fn request_equals_legacy_cost_solver() {
    let lib = lib();
    let session = Session::new(lib.clone());
    for tree in suite().iter().take(4) {
        let want = CostSolver::new(tree, &lib).max_cost(80).solve().unwrap();
        let outcome = session
            .request(tree)
            .objective(Objective::SlackCost { max_cost: 80 })
            .solve()
            .unwrap();
        let got = outcome.scenarios[0].frontier().unwrap();
        assert_eq!(got.points.len(), want.points.len());
        for (a, b) in got.points.iter().zip(&want.points) {
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.slack.value().to_bits(), b.slack.value().to_bits());
            assert_eq!(a.placements, b.placements);
        }
    }
}

/// Legacy `PolaritySolver` vs `Objective::PolarityAware`: identical
/// slack and placements, including negated sinks.
#[test]
fn request_equals_legacy_polarity_solver() {
    let lib = BufferLibrary::paper_synthetic_mixed(8).unwrap();
    let session = Session::new(lib.clone());
    for tree in suite().iter().take(4) {
        let negated: Vec<_> = tree.sinks().take(1).collect();
        let mut legacy = PolaritySolver::new(tree, &lib);
        for &s in &negated {
            legacy.require(s, Polarity::Negative).unwrap();
        }
        let want = legacy.solve().unwrap();
        let outcome = session
            .request(tree)
            .objective(Objective::PolarityAware {
                negated_sinks: negated,
            })
            .solve()
            .unwrap();
        let got = outcome.scenarios[0].polarity().unwrap();
        assert_eq!(got.slack.value().to_bits(), want.slack.value().to_bits());
        assert_eq!(got.placements, want.placements);
        assert_eq!(got.inverter_count, want.inverter_count);
    }
}

/// Legacy `BatchSolver` (itself now routed through the api layer) vs a
/// manual per-net request loop: bit-identical slacks and placements.
#[test]
fn batch_equals_per_net_requests() {
    let lib = lib();
    let session = Session::new(lib.clone());
    let nets = suite();
    let report = BatchSolver::new(&nets, &lib).workers(2).solve();
    for outcome in &report.outcomes {
        let solo = session.request(&nets[outcome.index]).solve().unwrap();
        let solo = solo.solution().unwrap();
        assert_eq!(
            outcome.slack.value().to_bits(),
            solo.slack.value().to_bits()
        );
        assert_eq!(outcome.placements, solo.placements);
    }
}

/// Acceptance: a 3-scenario request returns per-scenario solutions
/// matching three independent legacy solves while reusing one workspace.
#[test]
fn three_scenarios_match_three_legacy_solves_with_one_workspace() {
    let lib = lib();
    let session = Session::new(lib.clone());
    let tree = &suite()[2];
    let limit = Seconds::from_pico(280.0);

    let outcome = session
        .request(tree)
        .scenario(Scenario::named("typical"))
        .scenario(Scenario::named("signoff").slew_limit(limit))
        .scenario(
            Scenario::named("optimistic")
                .delay_model(Arc::new(ScaledElmoreModel::default()))
                .rat_derate(0.9),
        )
        .workers(1)
        .solve()
        .unwrap();

    // The sequential path checked out exactly one pooled workspace and
    // returned it after all three scenarios.
    assert_eq!(session.pooled_workspaces(), 1);

    let typical = Solver::new(tree, &lib).solve();
    let signoff = Solver::new(tree, &lib).slew_limit(limit).solve();
    let derated = tree.with_derated_rats(0.9);
    let optimistic = Solver::new(&derated, &lib)
        .delay_model(Arc::new(ScaledElmoreModel::default()))
        .solve();

    for (name, want) in [
        ("typical", &typical),
        ("signoff", &signoff),
        ("optimistic", &optimistic),
    ] {
        let got = outcome.scenario(name).unwrap().solution().unwrap();
        assert_eq!(
            got.slack.value().to_bits(),
            want.slack.value().to_bits(),
            "{name}"
        );
        assert_eq!(got.placements, want.placements, "{name}");
    }

    // A second request reuses the pooled workspace rather than growing
    // the pool.
    let again = session.request(tree).solve().unwrap();
    assert_eq!(session.pooled_workspaces(), 1);
    assert_eq!(
        again.solution().unwrap().slack.value().to_bits(),
        typical.slack.value().to_bits()
    );
}

/// Regression for the verify-model bug: `Solution::verify` silently
/// measures with Elmore, so for a solve under `ScaledElmoreModel` it
/// reports a spurious mismatch — while `Outcome::verify` uses the model
/// the scenario actually solved with and passes.
#[test]
fn outcome_verify_uses_the_stored_model_where_legacy_verify_misreports() {
    let lib = lib();
    let session = Session::builder(lib.clone())
        .delay_model(Arc::new(ScaledElmoreModel::default()))
        .build();
    // Wire-heavy line net: Elmore and scaled-Elmore predictions disagree.
    let tree = fastbuf::netgen::line_net(fastbuf::buflib::units::Microns::new(10_000.0), 9);
    let outcome = session.request(&tree).solve().unwrap();
    let solution = outcome.solution().unwrap().clone();

    // The legacy shim cross-checks against the *wrong* arithmetic:
    let err = solution.verify(&tree, &lib).unwrap_err();
    assert!(
        matches!(err, VerifyError::SlackMismatch { .. }),
        "expected a spurious mismatch from the Elmore-only shim, got {err:?}"
    );
    // The outcome knows which model produced each scenario:
    outcome.verify(&tree, &lib).unwrap();
    // And the explicit-model legacy path agrees once given the model:
    solution
        .verify_with(&tree, &lib, &ScaledElmoreModel::default())
        .unwrap();
}

/// The request layer returns typed errors instead of panicking.
#[test]
fn request_layer_is_panic_free_on_bad_input() {
    let session = Session::new(lib());
    let tree = &suite()[0];
    assert!(matches!(
        session.request(tree).scenarios(Vec::new()).solve(),
        Err(SolveError::NoScenarios)
    ));
    assert!(matches!(
        session
            .request(tree)
            .scenario(Scenario::named("dup"))
            .scenario(Scenario::named("dup"))
            .solve(),
        Err(SolveError::DuplicateScenario(_))
    ));
    assert!(matches!(
        session
            .request(tree)
            .scenario(Scenario::named("bad").rat_derate(-2.0))
            .solve(),
        Err(SolveError::InvalidDerate { .. })
    ));
    let err = session
        .request(tree)
        .objective(Objective::SlackCost { max_cost: 10 })
        .scenario(Scenario::named("s").delay_model(Arc::new(ScaledElmoreModel::default())))
        .solve()
        .unwrap_err();
    assert!(matches!(err, SolveError::Unsupported { .. }));
    // SolveError is a real std error.
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(!boxed.to_string().is_empty());
}
