//! Exhaustive oracle: on tiny nets, enumerate *every possible* buffer
//! assignment, evaluate each with the independent forward Elmore engine,
//! and check that the DP solvers find exactly the true optimum — and that
//! the cost solver's frontier matches the budget-restricted brute force.

use fastbuf::netgen::RandomNetSpec;
use fastbuf::prelude::*;
use fastbuf::rctree::{elmore, NodeId, RoutingTree};

/// Enumerates all `(b+1)^sites` assignments, returning the best slack and
/// for each budget the best slack at total cost ≤ budget.
fn brute_force(tree: &RoutingTree, lib: &BufferLibrary, max_budget: u32) -> (f64, Vec<f64>) {
    let sites: Vec<NodeId> = tree.buffer_sites().collect();
    let choices = lib.len() + 1;
    let total = choices.pow(sites.len() as u32);
    assert!(total <= 200_000, "brute force domain too large: {total}");

    let mut best = f64::NEG_INFINITY;
    let mut best_at_budget = vec![f64::NEG_INFINITY; max_budget as usize + 1];
    for code in 0..total {
        let mut c = code;
        let mut placements = Vec::new();
        let mut legal = true;
        for &site in &sites {
            let pick = c % choices;
            c /= choices;
            if pick > 0 {
                let id = BufferTypeId::new(pick - 1);
                if !tree.site_constraint(site).allows(id) {
                    legal = false;
                    break;
                }
                placements.push((site, id));
            }
        }
        if !legal {
            continue;
        }
        let report = elmore::evaluate(tree, lib, &placements).expect("legal assignment");
        let slack = report.slack.picos();
        best = best.max(slack);
        let cost = report.total_cost.round() as usize;
        if cost <= max_budget as usize {
            for slot in best_at_budget.iter_mut().skip(cost) {
                *slot = slot.max(slack);
            }
        }
    }
    (best, best_at_budget)
}

fn tiny_library(b: usize) -> BufferLibrary {
    // Small, non-degenerate library with integer costs 1 and 2.
    let mut bufs = Vec::new();
    for i in 0..b {
        let t = i as f64 / (b.max(2) - 1) as f64;
        bufs.push(
            BufferType::new(
                format!("t{i}"),
                Ohms::new(4000.0 - 3400.0 * t),
                Farads::from_femto(1.0 + 12.0 * t),
                Seconds::from_pico(30.0 + 3.0 * t),
            )
            .with_cost(1.0 + (i % 2) as f64),
        );
    }
    BufferLibrary::new(bufs).unwrap()
}

fn tiny_nets() -> Vec<(String, RoutingTree)> {
    let mut nets = Vec::new();
    nets.push((
        "line/4".into(),
        fastbuf::netgen::line_net(Microns::new(6000.0), 4),
    ));
    // A tee with sites on both branches.
    {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(300.0)));
        let s0 = b.buffer_site();
        let tee = b.internal();
        let s1 = b.buffer_site();
        let s2 = b.buffer_site();
        let k1 = b.sink(Farads::from_femto(8.0), Seconds::from_pico(700.0));
        let k2 = b.sink(Farads::from_femto(28.0), Seconds::from_pico(850.0));
        b.connect(src, s0, Wire::from_length(&tech, Microns::new(1800.0)))
            .unwrap();
        b.connect(s0, tee, Wire::from_length(&tech, Microns::new(700.0)))
            .unwrap();
        b.connect(tee, s1, Wire::from_length(&tech, Microns::new(2000.0)))
            .unwrap();
        b.connect(s1, k1, Wire::from_length(&tech, Microns::new(400.0)))
            .unwrap();
        b.connect(tee, s2, Wire::from_length(&tech, Microns::new(2600.0)))
            .unwrap();
        b.connect(s2, k2, Wire::from_length(&tech, Microns::new(600.0)))
            .unwrap();
        nets.push(("tee/3".into(), b.build().unwrap()));
    }
    for seed in 0..8u64 {
        let t = RandomNetSpec {
            sinks: 3 + (seed as usize % 3),
            die: Microns::new(2500.0),
            seed,
            site_pitch: Some(Microns::new(900.0)),
            ..RandomNetSpec::default()
        }
        .build();
        if t.buffer_site_count() <= 7 {
            nets.push((format!("random/{seed}"), t));
        }
    }
    nets
}

#[test]
fn exact_solvers_match_exhaustive_enumeration() {
    for b in [1usize, 2, 3] {
        let lib = tiny_library(b);
        for (name, tree) in tiny_nets() {
            if (lib.len() + 1).pow(tree.buffer_site_count() as u32) > 200_000 {
                continue;
            }
            let (true_best, _) = brute_force(&tree, &lib, 0);
            for algo in [Algorithm::Lillis, Algorithm::LiShi] {
                let sol = Solver::new(&tree, &lib).algorithm(algo).solve();
                assert!(
                    (sol.slack.picos() - true_best).abs() < 1e-6,
                    "{name} b={b} {algo}: solver {} vs brute force {}",
                    sol.slack.picos(),
                    true_best
                );
                // The reconstructed placements actually achieve it.
                let measured = sol.verify(&tree, &lib).unwrap();
                assert!((measured.picos() - true_best).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn cost_frontier_matches_budgeted_enumeration() {
    let lib = tiny_library(3);
    let budget = 12u32;
    for (name, tree) in tiny_nets() {
        if (lib.len() + 1).pow(tree.buffer_site_count() as u32) > 200_000 {
            continue;
        }
        let (_, best_at) = brute_force(&tree, &lib, budget);
        let frontier = CostSolver::new(&tree, &lib)
            .max_cost(budget)
            .solve()
            .unwrap();
        for w in 0..=budget {
            let brute = best_at[w as usize];
            let dp = frontier
                .best_within(w)
                .map(|p| p.slack.picos())
                .unwrap_or(f64::NEG_INFINITY);
            assert!(
                (dp - brute).abs() < 1e-6,
                "{name} budget {w}: frontier {dp} vs brute {brute}"
            );
        }
    }
}

/// Satellite: after every edit of an ECO script, the *incremental* solver
/// still finds exactly the brute-force optimum of the edited tree (and its
/// reconstruction achieves it on the forward evaluator) — the oracle
/// re-certifies true optimality, not just scratch-equality, across edits
/// including site blocks/unblocks that change the enumeration domain.
#[test]
fn incremental_solver_matches_exhaustive_enumeration_after_edits() {
    use fastbuf::incremental::{EditScriptSpec, IncrementalSolver};

    for b in [2usize, 3] {
        let lib = tiny_library(b);
        for (name, tree) in tiny_nets() {
            if (lib.len() + 1).pow(tree.buffer_site_count() as u32) > 200_000 {
                continue;
            }
            let mut solver = IncrementalSolver::new(tree, lib.clone());
            // Deterministic per-net script; no library swaps (the oracle
            // enumerates against `lib`).
            let script = EditScriptSpec {
                edits: 6,
                locality: 1.0,
                seed: 7 + b as u64,
                swap_library_every: 0,
            }
            .generate(solver.tree());
            for (k, edit) in script.iter().enumerate() {
                solver
                    .apply(edit)
                    .unwrap_or_else(|e| panic!("{name} edit {k}: {e}"));
                // Unblocks can grow the domain past the brute-force guard.
                if (lib.len() + 1).pow(solver.tree().buffer_site_count() as u32) > 200_000 {
                    continue;
                }
                let (true_best, _) = brute_force(solver.tree(), &lib, 0);
                let sol = solver.solve();
                assert!(
                    (sol.slack.picos() - true_best).abs() < 1e-6,
                    "{name} b={b} edit {k} (`{edit}`): incremental {} vs brute force {}",
                    sol.slack.picos(),
                    true_best
                );
                let measured = sol
                    .verify(solver.tree(), &lib)
                    .unwrap_or_else(|e| panic!("{name} edit {k}: {e}"));
                assert!((measured.picos() - true_best).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn permanent_pruning_stays_within_oracle_bound() {
    let lib = tiny_library(3);
    for (name, tree) in tiny_nets() {
        if (lib.len() + 1).pow(tree.buffer_site_count() as u32) > 200_000 {
            continue;
        }
        let (true_best, _) = brute_force(&tree, &lib, 0);
        let perm = Solver::new(&tree, &lib)
            .algorithm(Algorithm::LiShiPermanent)
            .solve();
        assert!(
            perm.slack.picos() <= true_best + 1e-6,
            "{name}: permanent pruning exceeded the true optimum"
        );
    }
}
