//! # fastbuf — optimal buffer insertion for interconnect delay
//!
//! A Rust implementation of the van Ginneken family of buffer-insertion
//! algorithms, reproducing **Li & Shi, "An O(bn²) Time Algorithm for
//! Optimal Buffer Insertion with b Buffer Types", DATE 2005**:
//!
//! * [`Algorithm::Lillis`] — the Lillis–Cheng–Lin O(b²n²) multi-type
//!   algorithm (and van Ginneken's O(n²) original when `b = 1`);
//! * [`Algorithm::LiShi`] — the paper's O(bn²) algorithm: at each buffer
//!   position, the candidates that spawn buffered candidates lie on the
//!   convex hull of the `(Q, C)` set, so one Graham scan plus one monotone
//!   walk replaces `b` full scans;
//! * [`Algorithm::LiShiPermanent`] — the paper's published pruning
//!   verbatim (see `DESIGN.md` §2.1 for why the default keeps the full
//!   list);
//! * [`cost::CostSolver`] — the slack-vs-cost Pareto frontier (the cost
//!   extension the paper's conclusion sketches).
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`api`] | `fastbuf-api` | **the front door**: `Session`, `SolveRequest`, multi-scenario `Outcome`, `Session::eco` |
//! | [`buflib`] | `fastbuf-buflib` | units, buffers, libraries, technology, clustering |
//! | [`rctree`] | `fastbuf-rctree` | routing trees, delay models, Elmore evaluation, segmenting, net files |
//! | (root) | `fastbuf-core` | the solvers themselves (plus the `SubtreeCache` seam) |
//! | [`netgen`] | `fastbuf-netgen` | deterministic synthetic nets, suites, and ECO edit scripts |
//! | [`batch`] | `fastbuf-batch` | parallel batch solving of net fleets over a worker pool |
//! | [`incremental`] | `fastbuf-incremental` | incremental (ECO) re-solving with per-subtree caching, bit-identical to scratch |
//! | [`global`] | `fastbuf-global` | design-level resource-constrained buffering: a Lagrangian pricing loop over shared site capacities |
//! | [`server`] | `fastbuf-server` | `fastbuf serve`: resident solve-as-a-service daemon (warm sessions, v1 wire protocol) |
//!
//! # Quick start
//!
//! ```
//! use fastbuf::prelude::*;
//!
//! // A 12 mm two-pin net with 11 candidate buffer positions.
//! let lib = BufferLibrary::paper_synthetic(16)?;
//! let tree = fastbuf::netgen::line_net(Microns::new(12_000.0), 11);
//!
//! // The unified request API: a cheap-to-clone Session plus typed,
//! // Result-returning requests (multi-scenario capable — see
//! // `fastbuf::api`).
//! let session = Session::new(lib);
//! let outcome = session.request(&tree).solve()?;
//! assert!(!outcome.solution().unwrap().placements.is_empty());
//! outcome.verify(&tree, session.library())?; // model-aware cross-check
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The legacy single-net path is still available and bit-identical to a
//! one-scenario request:
//!
//! ```
//! use fastbuf::prelude::*;
//! # let lib = BufferLibrary::paper_synthetic(16)?;
//! # let tree = fastbuf::netgen::line_net(Microns::new(12_000.0), 11);
//! let solution = Solver::new(&tree, &lib).solve();
//! solution.verify(&tree, &lib)?; // Elmore-only shim; see api::Outcome::verify
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for realistic scenarios (clock trees, buses, cost
//! trade-offs, net files) and `crates/bench` for the harnesses that
//! regenerate the paper's Table 1 and Figures 3–4.

#![deny(missing_docs)]

pub use fastbuf_api as api;
pub use fastbuf_batch as batch;
pub use fastbuf_buflib as buflib;
pub use fastbuf_design as design;
pub use fastbuf_global as global;
pub use fastbuf_incremental as incremental;
pub use fastbuf_netgen as netgen;
pub use fastbuf_rctree as rctree;
pub use fastbuf_server as server;

pub use fastbuf_core::cost;
pub use fastbuf_core::polarity;
pub use fastbuf_core::skew;
pub use fastbuf_core::{
    convex_prune_in_place, merge_branches, prunes_middle, upper_hull_into, Algorithm, Candidate,
    CandidateList, DelayModel, ElmoreModel, Kernel, Placement, PredArena, PredEntry, PredRef,
    ScaledElmoreModel, Solution, SolveStats, SolveWorkspace, Solver, SolverOptions, SubtreeCache,
    VerifyError,
};

/// One-stop imports for applications: the request API, solver, library,
/// tree-building and unit types.
pub mod prelude {
    pub use fastbuf_api::{
        EcoSolver, Objective, Outcome, Scenario, ScenarioOutcome, ScenarioResult, Session,
        SolveError, SolveRequest,
    };
    pub use fastbuf_batch::{BatchOptions, BatchReport, BatchSolver};
    pub use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
    pub use fastbuf_buflib::{
        BufferLibrary, BufferSet, BufferType, BufferTypeId, Driver, Technology,
    };
    pub use fastbuf_core::cost::CostSolver;
    pub use fastbuf_core::polarity::{Polarity, PolaritySolver};
    pub use fastbuf_core::skew::{SkewSolution, SkewSolver};
    pub use fastbuf_core::{
        Algorithm, DelayModel, ElmoreModel, Kernel, ScaledElmoreModel, Solution, SolveWorkspace,
        Solver, SolverOptions, SubtreeCache,
    };
    pub use fastbuf_global::{
        GlobalNet, GlobalOptions, GlobalReport, GlobalSolver, SiteCapacityMap,
    };
    pub use fastbuf_incremental::{EcoError, Edit, EditScriptSpec, IncrementalSolver};
    pub use fastbuf_rctree::{NodeId, NodeKind, RoutingTree, SiteConstraint, TreeBuilder, Wire};
}
